// Command distcheck is the distributed model checker: the exhaustive
// schedule exploration of modelcheck sharded across machines. One process
// coordinates (-serve), probing the schedule tree into disjoint subtree
// prefixes and leasing them to workers; any number of processes join as
// workers (-connect), running leased subtrees on their local pool and
// streaming results (and, under -prune, visited-state closures) back. The
// merged report is byte-identical to the single-process modelcheck run for
// any worker count, arrival order, or mid-run worker death — dead workers'
// subtrees are simply re-leased.
//
// Usage:
//
//	distcheck -serve :9464 -protocol kset -n 4 -k 3 -prune     # coordinator
//	distcheck -connect host:9464 -workers 8                    # each worker
//	distcheck -smoke -protocol firstvalue -n 4 -prune          # self-check
//
// Workers take the protocol and bounds from the coordinator, so only the
// coordinator needs the job flags. -smoke runs both roles in one process —
// a coordinator plus two TCP-loopback workers — and fails unless the
// distributed report is byte-identical to the single-process one.
//
// SIGINT on the coordinator prints the partial merged report (subtrees
// completed so far) instead of dying silently.
//
// Against a checkd daemon (see cmd/checkd), distcheck is also the job
// client:
//
//	distcheck -daemon host:9470 -submit -protocol kset -n 4 -k 3 -prune
//	distcheck -daemon host:9470 -status j0001
//	distcheck -daemon host:9470 -result j0001
//	distcheck -daemon host:9470 -cancel j0001
//	distcheck -daemon host:9470 -trace j0001
//	distcheck -daemon host:9470 -jobs
//
// Exit codes are uniform across every mode: 0 clean (or -h), 2 usage error
// (bad flags, rejected submission), 3 the check completed and found
// violations, 4 the check was interrupted before completion, 1 anything
// else (connection failure, runtime error, job failed or canceled).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"

	"revisionist/internal/harness"
	"revisionist/internal/obs"
	"revisionist/internal/trace"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "distcheck:", err)
	}
	if code := exitCode(err); code != 0 {
		os.Exit(code)
	}
}

// exitCode maps a run outcome to the process exit code — the CLI contract
// scripts build on: 0 clean or -h, 2 usage, 3 violations found, 4
// interrupted, 1 everything else (connection failures included).
func exitCode(err error) int {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if harness.IsUsage(err) {
		return 2
	}
	var viol *harness.ViolationsError
	if errors.As(err, &viol) {
		return 3
	}
	var intr *harness.InterruptedError
	if errors.As(err, &intr) {
		return 4
	}
	return 1
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("distcheck", flag.ContinueOnError)
	shared := harness.BindFlags(fs, "consensus")
	var (
		depth   = fs.Int("depth", 20, "max schedule depth")
		maxRuns = fs.Int("maxruns", 200_000, "max schedules")
		maxViol = fs.Int("maxviol", 3, "stop after this many violations")
		serve   = fs.String("serve", "", "coordinate on this TCP listen address (e.g. :9464)")
		connect = fs.String("connect", "", "join the coordinator at this address as a worker")
		smoke   = fs.Bool("smoke", false, "loopback self-check: coordinator + two local TCP workers vs the single-process run")
		daemon  = fs.String("daemon", "", "checkd daemon address for the client verbs (-submit, -status, -result, -cancel, -trace, -jobs)")
		submit  = fs.Bool("submit", false, "submit the job described by the protocol flags to -daemon and print its id")
		prio    = fs.Int("priority", 0, "fair-share priority for -submit: 1 (lowest) to 9 (highest), 0 = default (5)")
		status  = fs.String("status", "", "print this job id's state on -daemon")
		result  = fs.String("result", "", "fetch and render this job id's report from -daemon")
		cancelJ = fs.String("cancel", "", "cancel this job id on -daemon")
		traceJ  = fs.String("trace", "", "dump this job id's flight recording (timestamped lifecycle events) from -daemon")
		jobs    = fs.Bool("jobs", false, "list every job on -daemon, with the daemon's queue headroom")
		prog    = fs.Duration("progress", 0, "print live search progress to stderr every DUR where the search runs locally: -connect workers and -smoke (0 = off)")
	)
	if err := harness.ParseFlags(fs, args); err != nil {
		return err
	}
	if err := shared.Resolve(); err != nil {
		fs.Usage()
		return err
	}
	if shared.List {
		harness.WriteRegistry(out)
		return nil
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	opts := harness.Options{
		Protocol:      shared.Protocol,
		Params:        shared.Params,
		Engine:        shared.Engine,
		Workers:       shared.Workers,
		Prune:         shared.Prune,
		Symmetry:      shared.Symmetry,
		MaxDepth:      *depth,
		MaxRuns:       *maxRuns,
		MaxViolations: *maxViol,
		Serve:         *serve,
		Connect:       *connect,
		Priority:      *prio,
		Interrupted:   func() bool { return ctx.Err() != nil },
	}

	if *prog > 0 {
		// Progress is a pure side channel over a private registry: the report
		// on out stays byte-identical, the ticker lines go to stderr. It only
		// shows activity in modes that explore locally (-connect, -smoke);
		// elsewhere the counters simply never move.
		opts.Obs = trace.NewSearchObs(obs.NewRegistry())
		stop := harness.StartProgress(os.Stderr, opts.Obs, *prog)
		defer stop()
	}

	verbs := 0
	for _, on := range []bool{*submit, *status != "", *result != "", *cancelJ != "", *traceJ != "", *jobs} {
		if on {
			verbs++
		}
	}
	modes := verbs
	for _, on := range []bool{*serve != "", *connect != "", *smoke} {
		if on {
			modes++
		}
	}
	if verbs == 0 && *daemon != "" {
		fs.Usage()
		return &harness.UsageError{Err: fmt.Errorf("-daemon needs one of -submit, -status ID, -result ID, -cancel ID, -trace ID, -jobs")}
	}
	if verbs == 1 && *daemon == "" {
		fs.Usage()
		return &harness.UsageError{Err: fmt.Errorf("-submit/-status/-result/-cancel/-trace/-jobs need -daemon ADDR")}
	}
	if modes != 1 {
		fs.Usage()
		return &harness.UsageError{Err: fmt.Errorf("pick exactly one of -serve ADDR, -connect ADDR, -smoke, or a -daemon verb")}
	}
	if verbs == 1 {
		return runClient(out, *daemon, clientVerb{
			submit: *submit, status: *status, result: *result, cancel: *cancelJ, trace: *traceJ, jobs: *jobs,
		}, opts)
	}
	switch {
	case *connect != "":
		fmt.Fprintf(out, "worker: joining coordinator at %s with %d slot(s)\n", *connect, trace.ResolveWorkers(opts.Workers))
		if err := harness.ConnectCheck(ctx, opts, nil); err != nil {
			return err
		}
		fmt.Fprintln(out, "worker: released by coordinator")
		return nil
	case *serve != "":
		job, err := harness.CheckJob(opts) // resolves the protocol: fail before listening
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "coordinator: serving %s n=%d on %s\n", job.Protocol, job.Params.N, ln.Addr())
		rep, err := harness.ServeCheck(ctx, opts, ln)
		return harness.CheckOutcome(out, rep, err, *depth, shared.Prune, shared.Symmetry, nil)
	default:
		return smokeCheck(ctx, out, opts, *depth, shared.Prune, shared.Symmetry)
	}
}

// smokeCheck is the `make dist-smoke` payload: run the single-process Check,
// then the same job through a real TCP-loopback coordinator with two
// workers, and fail unless the two rendered reports are byte-identical.
func smokeCheck(ctx context.Context, out io.Writer, opts harness.Options, depth int, prune, symmetry bool) error {
	single, err := harness.Check(opts)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			harness.ConnectCheck(ctx, opts, conn)
		}()
	}
	distRep, derr := harness.ServeCheck(ctx, opts, ln)
	wg.Wait()
	if derr != nil {
		// Includes trace.ErrInterrupted: a ^C mid-smoke aborts the check
		// rather than comparing a partial report and misreporting divergence.
		return derr
	}

	var want, got bytes.Buffer
	harness.WriteCheckReport(&want, single, depth, prune, symmetry, nil)
	harness.WriteCheckReport(&got, distRep, depth, prune, symmetry, nil)
	fmt.Fprintf(out, "smoke: coordinator + 2 TCP-loopback workers on %s n=%d\n", single.Protocol.Name, single.Params.N)
	out.Write(got.Bytes())
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		return fmt.Errorf("distributed report diverges from single-process:\n--- single ---\n%s--- distributed ---\n%s", want.String(), got.String())
	}
	fmt.Fprintln(out, "smoke: distributed report byte-identical to single-process run")
	return nil
}
