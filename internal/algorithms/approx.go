package algorithms

import (
	"fmt"
	"math"

	"revisionist/internal/proto"
)

// AA2 is wait-free ε-approximate agreement for two processes with inputs in
// [0, 1], using 2 components (component i is written only by process i).
// It realizes the matching-order upper bound for the 2-process step
// complexity lower bound L = ½·log₃(1/ε) of Hoest–Shavit that Corollary 34
// consumes.
//
// Each process runs R = ⌈log₂(1/ε)⌉ rounds. Component i holds the history
// [v₁, ..., v_r] of process i's round values. In round r a process appends
// v_r to its history (update), then scans: if the other process has reached
// round r it moves to the midpoint of the two round-r values, otherwise it
// keeps v_r. The standard two-process argument shows the round-r distance at
// least halves every round: whichever process scans last sees the other's
// round-r write, so at least one of the two moves to the midpoint and the
// other either moves there too (distance 0) or keeps its value (distance
// halves). After R rounds the values are within 2^(−R) ≤ ε and every value
// is a midpoint of earlier values, hence within [min input, max input].
type AA2 struct {
	id     int // 0 or 1
	rounds int

	r    int // current round, 1-based
	v    float64
	hist []float64

	poisedUpdate bool
	started      bool
	done         bool
}

var _ proto.Process = (*AA2)(nil)

// NewAA2 returns process id ∈ {0, 1} with the given input and target eps.
func NewAA2(id int, input, eps float64) (*AA2, error) {
	if id != 0 && id != 1 {
		return nil, fmt.Errorf("algorithms: AA2 id must be 0 or 1, got %d", id)
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("algorithms: AA2 eps must be in (0, 1), got %g", eps)
	}
	if input < 0 || input > 1 {
		return nil, fmt.Errorf("algorithms: AA2 input must be in [0, 1], got %g", input)
	}
	return &AA2{
		id:     id,
		rounds: int(math.Ceil(math.Log2(1 / eps))),
		r:      1,
		v:      input,
	}, nil
}

// Rounds returns the number of rounds R the process runs.
func (p *AA2) Rounds() int { return p.rounds }

// NextOp implements proto.Process.
func (p *AA2) NextOp() proto.Op {
	switch {
	case p.done:
		return proto.Op{Kind: proto.OpOutput, Val: p.v}
	case p.poisedUpdate:
		hist := make([]float64, len(p.hist)+1)
		copy(hist, p.hist)
		hist[len(hist)-1] = p.v
		return proto.Op{Kind: proto.OpUpdate, Comp: p.id, Val: hist}
	default:
		return proto.Op{Kind: proto.OpScan}
	}
}

// ApplyScan implements proto.Process.
func (p *AA2) ApplyScan(view []proto.Value) {
	if !p.started {
		// Assumption-1 leading scan; ignored.
		p.started = true
		p.poisedUpdate = true
		return
	}
	other, _ := view[1-p.id].([]float64)
	if len(other) >= p.r {
		p.v = (p.v + other[p.r-1]) / 2
	}
	if p.r >= p.rounds {
		p.done = true
		return
	}
	p.r++
	p.poisedUpdate = true
}

// ApplyUpdate implements proto.Process.
func (p *AA2) ApplyUpdate() {
	p.hist = append(p.hist, p.v)
	p.poisedUpdate = false
}

// Clone implements proto.Process.
func (p *AA2) Clone() proto.Process {
	q := *p
	q.hist = make([]float64, len(p.hist))
	copy(q.hist, p.hist)
	return &q
}

// NewApproxAgreement2 builds the two-process protocol with its 2 components.
func NewApproxAgreement2(inputs [2]float64, eps float64) ([]proto.Process, int, error) {
	p0, err := NewAA2(0, inputs[0], eps)
	if err != nil {
		return nil, 0, err
	}
	p1, err := NewAA2(1, inputs[1], eps)
	if err != nil {
		return nil, 0, err
	}
	return []proto.Process{p0, p1}, 2, nil
}
