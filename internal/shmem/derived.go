package shmem

import "revisionist/internal/sched"

// This file implements the easy directions of the paper's object
// equivalences: m registers from an m-component multi-writer snapshot (§2,
// "replace each write to the j'th register by an update to the j'th
// component, and a read by a scan that discards all but the j'th value"),
// and the fetch-and-increment object §5.3 lists among the inherently
// ABA-free primitives.

// SnapshotRegister is the j'th register of an m-component multi-writer
// snapshot.
type SnapshotRegister struct {
	snap *MWSnapshot
	j    int
}

// RegistersFromSnapshot returns m register views over snap, one per
// component. Writes become updates; reads become scans that keep one value.
func RegistersFromSnapshot(snap *MWSnapshot) []*SnapshotRegister {
	out := make([]*SnapshotRegister, snap.Components())
	for j := range out {
		out[j] = &SnapshotRegister{snap: snap, j: j}
	}
	return out
}

// Write implements the register write.
func (r *SnapshotRegister) Write(pid int, v Value) {
	r.snap.Update(pid, r.j, v)
}

// Read implements the register read.
func (r *SnapshotRegister) Read(pid int) Value {
	return r.snap.Scan(pid)[r.j]
}

// FetchInc is an atomic fetch-and-increment object. Its value sequence is
// strictly increasing, so protocols using only FetchInc objects are ABA-free
// (§5.3) without any tagging.
type FetchInc struct {
	name    string
	stepper Stepper
	v       int
}

// NewFetchInc returns a counter starting at 0.
func NewFetchInc(name string, st Stepper) *FetchInc {
	return &FetchInc{name: name, stepper: st}
}

// FetchIncrement atomically increments the counter and returns its previous
// value.
func (f *FetchInc) FetchIncrement(pid int) int {
	f.stepper.Step(pid, sched.Op{Object: f.name, Kind: sched.OpUpdate, Comp: -1})
	v := f.v
	f.v++
	return v
}

// Read atomically returns the counter.
func (f *FetchInc) Read(pid int) int {
	f.stepper.Step(pid, sched.Op{Object: f.name, Kind: sched.OpRead, Comp: -1})
	return f.v
}
