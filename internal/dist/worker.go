package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"revisionist/internal/dist/wire"
	"revisionist/internal/trace"
)

// ErrRejected reports a coordinator that refused this worker's handshake
// (version skew). It is permanent for a given binary pair: reconnect loops
// must give up instead of retrying into the same rejection.
var ErrRejected = errors.New("dist: coordinator rejected this worker")

// workerJob is one announced job's local state on a worker: the resolved
// factory, the exploration options (Interrupted bound to the worker-wide and
// per-job stop flags), and the per-job mirror of that session's visited-state
// table. Mirrors are strictly per job — multiplexed jobs never see each
// other's closures, which is what keeps every job's report identical to its
// solo run.
type workerJob struct {
	nprocs  int
	factory trace.Factory
	opts    trace.ExploreOpts

	// bad marks a job this worker could not resolve (registry skew); its
	// leases, should any race in, are silently dropped — the coordinator
	// already reclaimed them on the fail message.
	bad bool

	// stopped aborts this job's in-flight subtrees (retire or run error).
	stopped atomic.Bool

	mu     sync.RWMutex
	mirror map[uint64]int
}

func (j *workerJob) frozen(fp uint64) (int, bool) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	rem, ok := j.mirror[fp]
	return rem, ok
}

// task is one dispatched lease with its job's state resolved.
type task struct {
	lease wire.Lease
	js    *workerJob
}

// taskQueue is an unbounded FIFO between the read loop and the pool. The
// read loop must never block: the conversation is full-duplex on one
// connection, and with multiplexed jobs a cancelled job's already-queued
// leases can transiently push the backlog past the slot count — a bounded
// channel could then stall the read loop against a coordinator mid-send, a
// distributed deadlock. Depth stays bounded in practice by the coordinator's
// per-worker slot accounting plus retired stragglers.
type taskQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	tasks  []task
	closed bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *taskQueue) push(t task) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.tasks = append(q.tasks, t)
	q.cond.Signal()
}

// pop blocks for the next task; ok is false once the queue is closed and
// drained of nothing (close discards the backlog — it only happens when the
// session is over).
func (q *taskQueue) pop() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.tasks) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return task{}, false
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	return t, true
}

func (q *taskQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.tasks = nil
	q.cond.Broadcast()
}

// Work serves one coordinator fleet over conn: it announces slots lease
// capacity (0 selects GOMAXPROCS), resolves each announced job from the
// local registry, and runs leased subtrees concurrently on a pool of slots
// goroutines until the fleet shuts the connection down. The worker
// multiplexes any number of concurrent jobs: every lease, result and failure
// is job-tagged, each job prunes against its own mirror table, and a retire
// message drops a job's state and aborts its in-flight subtrees.
//
// Each lease's visited-state delta is applied to its job's mirror before the
// lease is dispatched — the read loop is sequential and the coordinator only
// ships a job's deltas at that job's wave barriers, so a running subtree
// always prunes against the table frozen at its wave start, exactly like an
// in-process worker.
//
// Work returns nil on an orderly shutdown, ctx.Err() if ctx ended the
// session, an explicit version-skew error if the coordinator rejected the
// handshake, and the transport error otherwise. A worker that dies
// mid-subtree (process kill, connection loss) needs no cleanup protocol:
// only complete outcomes are ever reported, and the coordinator re-leases
// whatever was outstanding.
func Work(ctx context.Context, conn net.Conn, slots int, resolve Resolver) error {
	return WorkCfg(ctx, conn, WorkConfig{Slots: slots}, resolve)
}

// WorkConfig tunes one worker connection beyond the slot count.
type WorkConfig struct {
	// Slots is the concurrent lease capacity (0 selects GOMAXPROCS).
	Slots int
	// IdleTimeout bounds the silence the worker tolerates from the
	// coordinator before declaring the link dead (default 5m). It is a
	// backstop, not a detector: a live coordinator pings silent workers
	// every few seconds, so only a wedged or partitioned coordinator ever
	// trips it.
	IdleTimeout time.Duration
	// WriteTimeout bounds each frame send (default 30s).
	WriteTimeout time.Duration
	// Obs, when non-nil, receives the search core's live counters for every
	// subtree this worker runs, across all multiplexed jobs. The field never
	// crosses the wire (lease options arrive with it nil); it is this
	// worker's local instrumentation seam, feeding `distcheck -connect
	// -progress` and checkd's spawned-worker metrics.
	Obs *trace.SearchObs
}

func (cfg WorkConfig) withDefaults() WorkConfig {
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	return cfg
}

// WorkCfg is Work with explicit timeouts.
func WorkCfg(ctx context.Context, conn net.Conn, cfg WorkConfig, resolve Resolver) error {
	defer conn.Close()
	cfg = cfg.withDefaults()
	slots := cfg.Slots
	// stopping aborts all in-flight subtrees: once the session ends (shutdown,
	// connection loss, ctx cancellation), running DFS loops see it at their
	// next poll and bail out instead of exploring abandoned leases to the
	// bitter end. Their stopped outcomes are discarded, never reported.
	var stopping atomic.Bool
	if ctx != nil {
		stop := context.AfterFunc(ctx, func() {
			stopping.Store(true)
			conn.Close()
		})
		defer stop()
	}
	slots = trace.ResolveWorkers(slots)
	c := wire.NewConn(conn)
	c.SetTimeouts(cfg.IdleTimeout, cfg.WriteTimeout)
	if err := c.Send(&wire.Msg{Kind: wire.KindHello, Hello: &wire.Hello{Version: wire.Version, Slots: slots}}); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}

	queue := newTaskQueue()
	var wg sync.WaitGroup
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t, ok := queue.pop()
				if !ok {
					return
				}
				if stopping.Load() {
					return
				}
				if t.js.stopped.Load() {
					continue // job retired while queued: drop the lease
				}
				outcome, err := trace.RunSubtree(t.js.nprocs, t.js.factory, t.js.opts, t.lease.Root, t.lease.Base, t.js.frozen)
				if err != nil {
					// A run error is job-scoped capability skew: fail the job,
					// keep serving the others.
					t.js.stopped.Store(true)
					c.Send(&wire.Msg{Kind: wire.KindFail, Fail: &wire.Fail{Job: t.lease.Job, Err: err.Error()}})
					continue
				}
				if outcome.Stopped {
					if stopping.Load() {
						return // session over: incomplete, never reported
					}
					continue // job retired mid-run: discard
				}
				if err := c.Send(&wire.Msg{Kind: wire.KindResult,
					Result: &wire.Result{Job: t.lease.Job, ID: t.lease.ID, Outcome: outcome}}); err != nil {
					return
				}
			}
		}()
	}
	defer func() {
		stopping.Store(true)
		queue.close()
		wg.Wait()
	}()

	jobs := map[string]*workerJob{}
	for {
		msg, err := c.Recv()
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dist: connection lost: %w", err)
		}
		switch msg.Kind {
		case wire.KindReject:
			if msg.Reject != nil && msg.Reject.Err != "" {
				return fmt.Errorf("%w: %s", ErrRejected, msg.Reject.Err)
			}
			return ErrRejected
		case wire.KindPing:
			// Answer from the read loop: a worker whose slots are all busy
			// computing still pongs, which is exactly the signal the
			// coordinator needs to tell "slow" from "wedged".
			if err := c.Send(&wire.Msg{Kind: wire.KindPong}); err != nil {
				return fmt.Errorf("dist: connection lost: %w", err)
			}
		case wire.KindJob:
			if msg.Job == nil || msg.Job.ID == "" {
				return fmt.Errorf("dist: malformed job announcement")
			}
			js := &workerJob{}
			job := *msg.Job
			nprocs, factory, err := resolve(job)
			if err != nil {
				js.bad = true
				js.stopped.Store(true)
				jobs[job.ID] = js
				c.Send(&wire.Msg{Kind: wire.KindFail, Fail: &wire.Fail{Job: job.ID, Err: err.Error()}})
				continue
			}
			js.nprocs = nprocs
			js.factory = factory
			js.opts = job.Opts
			js.opts.Interrupted = func() bool { return stopping.Load() || js.stopped.Load() }
			js.opts.Obs = cfg.Obs
			js.mirror = map[uint64]int{}
			jobs[job.ID] = js
		case wire.KindLease:
			if msg.Lease == nil {
				return fmt.Errorf("dist: empty lease")
			}
			js := jobs[msg.Lease.Job]
			if js == nil {
				return fmt.Errorf("dist: lease for unannounced job %q", msg.Lease.Job)
			}
			if js.bad || js.stopped.Load() {
				continue // already failed; the coordinator reclaims the lease
			}
			js.mu.Lock()
			for _, e := range msg.Lease.Table {
				if cur, ok := js.mirror[e.Fp]; !ok || e.Rem > cur {
					js.mirror[e.Fp] = e.Rem
				}
			}
			js.mu.Unlock()
			queue.push(task{lease: *msg.Lease, js: js})
		case wire.KindRetire:
			if msg.Retire == nil {
				continue
			}
			if js := jobs[msg.Retire.Job]; js != nil {
				js.stopped.Store(true)
				delete(jobs, msg.Retire.Job)
			}
		case wire.KindShutdown:
			return nil
		default:
			return fmt.Errorf("dist: unexpected %q from coordinator", msg.Kind)
		}
	}
}
