module revisionist

go 1.24
