// Package bounds implements the paper's quantitative results in closed form:
// the space lower bounds of Theorem 21 and Corollaries 33–34, the known upper
// bounds they are compared against, and the step-complexity recurrences a(r)
// and b(i) of §4.5 with their closed-form caps.
package bounds

import (
	"fmt"
	"math"
)

// SetAgreementLB is Corollary 33: any x-obstruction-free protocol solving
// k-set agreement among n > k processes uses at least ⌊(n−x)/(k+1−x)⌋ + 1
// registers, for 1 <= x <= k.
func SetAgreementLB(n, k, x int) (int, error) {
	if err := checkNKX(n, k, x); err != nil {
		return 0, err
	}
	return (n-x)/(k+1-x) + 1, nil
}

// SetAgreementUB is the best known upper bound, the x-obstruction-free
// protocol of Bouzid, Raynal and Sutra [16] with n−k+x registers.
func SetAgreementUB(n, k, x int) (int, error) {
	if err := checkNKX(n, k, x); err != nil {
		return 0, err
	}
	return n - k + x, nil
}

// ConsensusLB is the tight n-register lower bound for obstruction-free (and
// randomized wait-free) consensus: Corollary 33 with k = x = 1.
func ConsensusLB(n int) int {
	lb, err := SetAgreementLB(n, 1, 1)
	if err != nil {
		return 0
	}
	return lb
}

// ApproxAgreementSpaceLB is Corollary 34: for 0 < eps < 1, any
// obstruction-free protocol for eps-approximate agreement among n >= 2
// processes uses at least min{⌊n/2⌋ + 1, √(log₂ log₃ (1/eps)) − 2} registers.
//
// Note the scale of "for sufficiently small eps": the √(log₂ log₃ (1/eps))
// term reaches ⌊n/2⌋+1 only once log₃(1/eps) >= 2^((n/2+3)²), i.e. eps below
// 3^(−2^64) already for n = 10 — far below float64 range. Use
// ApproxAgreementSpaceLBFromLog3 with a symbolic log₃(1/eps) for tables that
// exhibit the crossover.
func ApproxAgreementSpaceLB(n int, eps float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("bounds: invalid eps=%g", eps)
	}
	return ApproxAgreementSpaceLBFromLog3(n, math.Log(1/eps)/math.Log(3))
}

// ApproxAgreementSpaceLBFromLog3 computes the Corollary 34 bound given
// log₃(1/eps) directly, so astronomically small eps can be expressed.
func ApproxAgreementSpaceLBFromLog3(n int, log3InvEps float64) (int, error) {
	if n < 2 || log3InvEps <= 0 {
		return 0, fmt.Errorf("bounds: invalid n=%d log3(1/eps)=%g", n, log3InvEps)
	}
	coverBound := n/2 + 1
	stepTerm := 1.0 // a protocol uses at least one register
	if lg := math.Log2(log3InvEps); lg > 0 {
		if s := math.Sqrt(lg) - 2; s > stepTerm {
			stepTerm = s
		}
	}
	if s := int(math.Floor(stepTerm)); s < coverBound {
		return s, nil
	}
	return coverBound, nil
}

// ApproxAgreementStepLB is the two-process step-complexity lower bound of
// Hoest and Shavit [36] that Corollary 34 consumes: L = ½·log₃(1/eps).
func ApproxAgreementStepLB(eps float64) float64 {
	return 0.5 * math.Log(1/eps) / math.Log(3)
}

// Theorem21OF is the first case of Theorem 21: if Π is obstruction-free and L
// is a step-complexity lower bound for solving the task wait-free among f
// processes, then m >= min{⌊n/f⌋ + 1, √(log₂(L)/f)}.
func Theorem21OF(n, f int, l float64) float64 {
	cover := float64(n/f + 1)
	step := math.Sqrt(math.Log2(l) / float64(f))
	return math.Min(cover, step)
}

// Theorem21XOF is the second case of Theorem 21: if Π is x-obstruction-free
// and the task is not wait-free solvable among f > x processes, then
// m >= ⌊(n−x)/(f−x)⌋ + 1.
func Theorem21XOF(n, f, x int) (int, error) {
	if x < 0 || f <= x || n < f {
		return 0, fmt.Errorf("bounds: invalid n=%d f=%d x=%d", n, f, x)
	}
	return (n-x)/(f-x) + 1, nil
}

// A is the recurrence a(r) of §4.5: the maximum number of Block-Updates a
// covering simulator applies in a call to Construct(r) when all its
// Block-Updates are atomic (Lemma 29):
//
//	a(1) = 0;   a(r) = (C(m, r-1) + 1)·a(r-1) + C(m, r-1).
func A(m, r int) float64 {
	if r <= 1 {
		return 0
	}
	c := Binomial(m, r-1)
	return (c+1)*A(m, r-1) + c
}

// ACap is the closed-form cap a(r) <= 2^(m(r-1)) from §4.5.
func ACap(m, r int) float64 {
	return math.Pow(2, float64(m*(r-1)))
}

// B is the recurrence b(i) of §4.5, bounding the Block-Updates applied by
// covering simulator q_i (Lemma 30, 1-based i):
//
//	b(1) = a(m);   b(i) = (a(m-1) + 1)·Σ_{j<i} b(j) + a(m).
func B(m, i int) float64 {
	if i <= 1 {
		return A(m, m)
	}
	sum := 0.0
	for j := 1; j < i; j++ {
		sum += B(m, j)
	}
	return (A(m, m-1)+1)*sum + A(m, m)
}

// BClosed is the exact solution of the b(i) recurrence:
//
//	b(i) = a(m)·(a(m−1)+2)^(i−1).
//
// (Writing c = a(m−1) and S_i = Σ_{j<=i} b(j), the recurrence gives
// S_i = (c+2)·S_{i−1} + a(m), whence b(i) = a(m)(c+2)^(i−1).) The paper
// states b(i) = a(m)·(a(m−1)+1)^(i−1), whose base is off by one and which
// does not satisfy the recurrence; the discrepancy is absorbed by the
// 2^(i·m·(m−1)) cap the paper actually uses (a(m−1)+2 <= a(m) for m >= 2),
// which BCap reproduces and the tests verify.
func BClosed(m, i int) float64 {
	return A(m, m) * math.Pow(A(m, m-1)+2, float64(i-1))
}

// BCap is the cap b(i) <= 2^(i·m·(m−1)) from §4.5.
func BCap(m, i int) float64 {
	return math.Pow(2, float64(i*m*(m-1)))
}

// SimulationStepCap is the Lemma 31 bound: with only covering simulators,
// every simulator outputs after at most (2f+7)·b(f) + 3 <= 2^(f·m²) steps.
func SimulationStepCap(f, m int) float64 {
	v := float64(2*f+7)*B(m, f) + 3
	cap2 := math.Pow(2, float64(f*m*m))
	if f >= 2 && m >= 2 && v > cap2 {
		return cap2
	}
	return v
}

// SimulationOpsCap is the Lemma 31 per-simulator operation bound 2·b(i) + 1
// (1-based i).
func SimulationOpsCap(m, i int) float64 {
	return 2*B(m, i) + 1
}

// BlockUpdateSteps and ScanSteps restate Lemma 2: a Block-Update takes 6
// steps on H, and a Scan concurrent with k triple-appending updates takes at
// most 2k+3.
func BlockUpdateSteps() int { return 6 }

// ScanSteps returns the Lemma 2 bound for a Scan with k concurrent updates.
func ScanSteps(k int) int { return 2*k + 3 }

// AA2Rounds is the number of rounds of the repository's 2-process halving
// protocol for inputs in [0,1]: ⌈log₂(1/eps)⌉ (each round is one update and
// one scan).
func AA2Rounds(eps float64) int {
	return int(math.Ceil(math.Log2(1 / eps)))
}

// Binomial returns C(n, k) as a float (exact for the small arguments used
// here).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return math.Round(out)
}

func checkNKX(n, k, x int) error {
	if k < 1 || x < 1 || x > k || n <= k {
		return fmt.Errorf("bounds: invalid n=%d k=%d x=%d (need 1 <= x <= k < n)", n, k, x)
	}
	return nil
}
