// Admin-surface tests: the HTTP handler scraped in-process with
// httptest recorders — no listener, so nothing to leak — against a real
// daemon that ran a real job through an instrumented worker. Covers the
// probe semantics (ready flips to 503 on drain), the metrics exposition
// carrying every layer's series with the job's work visible in them, the
// JSON job listing with admission headroom, and the per-job flight
// recording. Runs under -race in CI like the rest of the package.
package jobd_test

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"revisionist/internal/dist"
	"revisionist/internal/dist/wire"
	"revisionist/internal/harness"
	"revisionist/internal/jobd"
	"revisionist/internal/obs"
	"revisionist/internal/protocol"
	"revisionist/internal/trace"
)

// scrape performs one in-process request against the admin handler.
func scrape(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.String(), rec.Header()
}

func TestAdminEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	td := startDaemon(t, jobd.Config{Dir: t.TempDir(), MaxActive: 1, Registry: reg})
	h := td.d.AdminHandler(nil)

	// Probes answer before any worker or job exists.
	if code, body, _ := scrape(t, h, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body, _ := scrape(t, h, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz = %d %q", code, body)
	}
	// A non-nil gate that says no wins over daemon readiness.
	if code, _, _ := scrape(t, td.d.AdminHandler(func() bool { return false }), "/readyz"); code != 503 {
		t.Fatalf("/readyz with false gate = %d, want 503", code)
	}

	// One instrumented worker: its search counters land on the daemon's
	// registry, the same wiring checkd's spawned workers use.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", td.addr)
		if err != nil {
			return
		}
		dist.WorkCfg(t.Context(), conn, dist.WorkConfig{Slots: 2, Obs: trace.NewSearchObs(reg)}, harness.Resolve)
	}()
	defer wg.Wait()

	cl, err := jobd.Dial(td.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	job, err := harness.CheckJob(harness.Options{Protocol: "kset",
		Params: protocol.Params{N: 3, K: 2}, MaxDepth: 10, Prune: true, Symmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := cl.Submit(job)
	if err != nil || ack.Err != "" {
		t.Fatalf("submit: %v %q", err, ack.Err)
	}
	waitState(t, cl, ack.ID, string(jobd.StateDone))

	// The exposition carries series from every layer, with the finished
	// job's work visible in them, under the Prometheus text content type.
	code, metrics, hdr := scrape(t, h, "/metrics")
	if code != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Fatalf("/metrics = %d, Content-Type %q", code, hdr.Get("Content-Type"))
	}
	for _, series := range []string{
		"search_runs_total",
		"dist_leases_issued_total",
		"dist_worker_joins_total 1",
		"jobd_queue_depth 0",
		`jobd_jobs{state="done"} 1`,
		"jobd_journal_bytes_total",
		"jobd_fsync_seconds_count",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics is missing %q:\n%s", series, metrics)
		}
	}
	if strings.Contains(metrics, "search_runs_total 0\n") {
		t.Error("search_runs_total never moved: the worker's SearchObs is not wired to the registry")
	}

	// The job listing is JSON with admission headroom plus the job.
	_, jobsBody, jobsHdr := scrape(t, h, "/jobs")
	if ct := jobsHdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/jobs Content-Type = %q", ct)
	}
	var listing struct {
		Queue wire.QueueInfo
		Jobs  []wire.JobInfo
	}
	if err := json.Unmarshal([]byte(jobsBody), &listing); err != nil {
		t.Fatalf("/jobs: %v in %s", err, jobsBody)
	}
	if listing.Queue.MaxQueued <= 0 {
		t.Fatalf("/jobs queue headroom missing: %+v", listing.Queue)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != ack.ID || listing.Jobs[0].State != string(jobd.StateDone) {
		t.Fatalf("/jobs listing = %+v", listing.Jobs)
	}

	// The flight recording spans the whole lifecycle, newest state last.
	_, traceBody, _ := scrape(t, h, "/jobs/"+ack.ID+"/trace")
	var ev wire.Events
	if err := json.Unmarshal([]byte(traceBody), &ev); err != nil {
		t.Fatalf("/jobs/%s/trace: %v in %s", ack.ID, err, traceBody)
	}
	kinds := map[string]bool{}
	for _, e := range ev.Events {
		kinds[e.Kind] = true
	}
	for _, kind := range []string{"queued", "start", "lease", "finish", "done"} {
		if !kinds[kind] {
			t.Fatalf("/jobs/%s/trace is missing a %q event: %s", ack.ID, kind, traceBody)
		}
	}
	if last := ev.Events[len(ev.Events)-1]; last.Kind != "done" {
		t.Fatalf("flight recording ends with %q, want done", last.Kind)
	}

	// Unknown jobs and malformed paths 404 instead of panicking.
	if code, _, _ := scrape(t, h, "/jobs/nope/trace"); code != 404 {
		t.Fatalf("/jobs/nope/trace = %d, want 404", code)
	}
	if code, _, _ := scrape(t, h, "/jobs/"+ack.ID+"/other"); code != 404 {
		t.Fatalf("/jobs/ID/other = %d, want 404", code)
	}

	// pprof is mounted on the private mux.
	if code, body, _ := scrape(t, h, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	// Draining flips readiness: the handler stays up, the probe says stop.
	td.shutdown(t)
	if code, body, _ := scrape(t, h, "/readyz"); code != 503 || !strings.Contains(body, "not ready") {
		t.Fatalf("/readyz after drain = %d %q, want 503 not ready", code, body)
	}
	if code, _, _ := scrape(t, h, "/healthz"); code != 200 {
		t.Fatalf("/healthz after drain = %d, want 200 (liveness is not readiness)", code)
	}
}
