// Consensus demonstrates the tight case of Corollary 33: obstruction-free
// consensus among n processes is solvable with exactly n registers (the
// shared-memory Paxos protocol, looked up in the protocol registry) and not
// with fewer.
//
// The example runs the protocol under three adversaries:
//   - a solo scheduler (obstruction-freedom: the isolated process decides),
//   - a seeded random scheduler (usually everyone decides, always safely),
//   - an alternating adversary (may livelock — consensus with registers
//     cannot be wait-free — but never violates agreement or validity),
//
// and then shows the reduction's contrapositive: starving the protocol of
// registers (the registry's firstvalue-consensus, m = 1) lets the harness's
// exhaustive checker find an agreement violation.
//
// Run with: go run ./examples/consensus
package main

import (
	"errors"
	"fmt"
	"log"

	"revisionist/internal/bounds"
	"revisionist/internal/harness"
	"revisionist/internal/proto"
	"revisionist/internal/protocol"
	"revisionist/internal/sched"
	"revisionist/internal/spec"
)

func main() {
	const n = 5
	paxos := protocol.MustLookup("consensus")
	params := protocol.Params{N: n}
	inputs := make([]spec.Value, n)
	for i := range inputs {
		inputs[i] = 10 * (i + 1)
	}
	fmt.Printf("obstruction-free consensus, n=%d: lower bound %d registers (Corollary 33)\n\n",
		n, bounds.ConsensusLB(n))

	// Solo runs: obstruction-freedom. Instances are single-use, so build a
	// fresh one per run.
	for solo := 0; solo < n; solo++ {
		inst, err := paxos.InstantiateWith(params, inputs)
		if err != nil {
			log.Fatal(err)
		}
		res, _, err := proto.Run(inst.Procs, inst.M, nil, sched.Solo{PID: solo, Fallback: sched.RoundRobin{N: n}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("solo run of p%d: decided %v in %d operations\n", solo, res.Outputs[solo], res.OpsBy[solo])
	}

	// Random schedules: safety always, and usually liveness.
	decidedAll := 0
	for seed := int64(0); seed < 20; seed++ {
		inst, err := paxos.InstantiateWith(params, inputs)
		if err != nil {
			log.Fatal(err)
		}
		res, _, rerr := proto.Run(inst.Procs, inst.M, nil, sched.NewRandom(seed), sched.WithMaxSteps(100_000))
		if rerr != nil && !errors.Is(rerr, sched.ErrMaxSteps) {
			log.Fatal(rerr)
		}
		if err := inst.Task.Validate(inputs, res.DoneOutputs()); err != nil {
			log.Fatal("agreement violated: ", err)
		}
		all := true
		for _, d := range res.Done {
			all = all && d
		}
		if all {
			decidedAll++
		}
	}
	fmt.Printf("\nrandom schedules: 20/20 safe, %d/20 fully decided\n", decidedAll)

	// Starved protocol: the harness's exhaustive checker exhibits the
	// violation on the registry's one-register consensus stand-in.
	rep, err := harness.Check(harness.Options{
		Protocol: "firstvalue-consensus",
		Params:   protocol.Params{N: 2},
		MaxDepth: 12,
		MaxRuns:  50_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Explore.Violations) == 0 {
		log.Fatal("expected a violation for the 1-register protocol")
	}
	fmt.Printf("\nstarved to m=1 register: %d schedules explored, first agreement violation on schedule %v\n",
		rep.Explore.Runs, rep.Explore.Violations[0].Schedule)
	fmt.Println("   ->", rep.Explore.Violations[0].Err)
}
