package jobd_test

import (
	"testing"

	"revisionist/internal/leaktest"
)

// TestMain fails the package if any daemon, queue, or client goroutine
// outlives its test — restarts and chaos soaks churn connections, and every
// handler they start must come home.
func TestMain(m *testing.M) { leaktest.Main(m) }
