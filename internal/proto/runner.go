package proto

import (
	"fmt"

	"revisionist/internal/sched"
	"revisionist/internal/shmem"
)

// Run executes the protocol given by procs over a fresh atomic m-component
// multi-writer snapshot under the given strategy, on the default execution
// engine (the direct-dispatch sequential engine). initial is the initial
// component value (the paper's ⊥ is nil). It returns the protocol-level
// result and the scheduler-level result.
func Run(procs []Process, m int, initial Value, strat sched.Strategy, opts ...sched.Option) (*RunResult, *sched.Result, error) {
	return RunEngine(sched.DefaultEngine, procs, m, initial, strat, opts...)
}

// RunEngine is Run on an explicitly chosen execution engine. Both engines
// produce byte-identical traces for the same (Strategy, seed); the sequential
// engine dispatches the processes as step machines with no goroutines.
func RunEngine(kind sched.EngineKind, procs []Process, m int, initial Value, strat sched.Strategy, opts ...sched.Option) (*RunResult, *sched.Result, error) {
	n := len(procs)
	res := NewRunResult(n)
	eng, err := sched.NewEngine(kind, n, strat, opts...)
	if err != nil {
		return nil, nil, err
	}
	snap := shmem.NewMWSnapshot("M", eng, m, initial)
	sres, rerr := eng.RunMachines(Machines(procs, snap, res))
	return res, sres, rerr
}

// RunOnSnapshot is Run but over a caller-constructed snapshot (for example a
// register-built RegMWSnapshot), sharing the caller's engine. Because such
// snapshots may take several gated steps per operation, the processes run as
// plain bodies (Body) rather than one-step machines.
func RunOnSnapshot(procs []Process, snap Snapshot, eng sched.Engine) (*RunResult, *sched.Result, error) {
	res := NewRunResult(len(procs))
	sres, err := eng.Run(Body(procs, snap, res))
	return res, sres, err
}

// SoloStop tells how a local solo simulation ended.
type SoloStop int

// SoloStop values.
const (
	// SoloPoisedUpdate: the process is poised to update a component for
	// which allowed() is false (the stopping condition of Algorithm 6,
	// line 13).
	SoloPoisedUpdate SoloStop = iota + 1
	// SoloOutput: the process output a value.
	SoloOutput
)

// RunSolo locally simulates a solo execution of p against the private memory
// mem (§4.1: "locally simulate pi,r assuming the contents of M are V").
//
// Scans are answered from mem; updates to components with allowed(comp) true
// are applied to mem; the run stops as soon as p is poised to update a
// component with allowed(comp) false (without applying it), or outputs. If
// allowed is nil every update is applied, which realizes the "terminating
// solo execution" of Algorithm 7. maxOps bounds the local steps: exceeding
// it means the protocol is not obstruction-free and is reported as an error.
//
// p and mem are mutated in place; callers own both.
func RunSolo(p Process, mem []Value, allowed func(comp int) bool, maxOps int) (SoloStop, Value, error) {
	stop, out, _, err := RunSoloTrace(p, mem, allowed, maxOps)
	return stop, out, err
}

// RunSoloTrace is RunSolo but additionally returns the sequence of hidden
// steps taken: the scans and the applied updates, in order, with a final
// OpOutput entry when the process output. The revisionist simulation records
// this trace so the simulated execution can be reconstructed and re-validated
// offline (Lemma 26).
func RunSoloTrace(p Process, mem []Value, allowed func(comp int) bool, maxOps int) (SoloStop, Value, []Op, error) {
	var steps []Op
	for ops := 0; ops < maxOps; ops++ {
		op := p.NextOp()
		switch op.Kind {
		case OpScan:
			view := make([]Value, len(mem))
			copy(view, mem)
			p.ApplyScan(view)
			steps = append(steps, Op{Kind: OpScan})
		case OpUpdate:
			if allowed != nil && !allowed(op.Comp) {
				return SoloPoisedUpdate, nil, steps, nil
			}
			if op.Comp < 0 || op.Comp >= len(mem) {
				return 0, nil, steps, fmt.Errorf("proto: solo update to out-of-range component %d", op.Comp)
			}
			mem[op.Comp] = op.Val
			p.ApplyUpdate()
			steps = append(steps, op)
		case OpOutput:
			steps = append(steps, op)
			return SoloOutput, op.Val, steps, nil
		default:
			return 0, nil, steps, fmt.Errorf("proto: solo run hit invalid op kind %v", op.Kind)
		}
	}
	return 0, nil, steps, fmt.Errorf("proto: solo run did not terminate within %d operations (protocol not obstruction-free?)", maxOps)
}

// CloneAll deep-copies a slice of processes.
func CloneAll(procs []Process) []Process {
	out := make([]Process, len(procs))
	for i, p := range procs {
		out[i] = p.Clone()
	}
	return out
}
