package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSmokeMode runs the loopback self-check end to end on a small instance:
// one coordinator, two real TCP workers, byte-compared against the
// single-process run.
func TestSmokeMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-smoke", "-protocol", "consensus", "-n", "2", "-depth", "10"}, &out); err != nil {
		t.Fatalf("smoke failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "byte-identical") {
		t.Fatalf("missing verdict:\n%s", out.String())
	}
}

// TestSmokeModePruned covers the visited-state publication path over TCP.
func TestSmokeModePruned(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-smoke", "-protocol", "firstvalue", "-n", "4", "-prune"}, &out); err != nil {
		t.Fatalf("pruned smoke failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "state pruning:") {
		t.Fatalf("missing pruning counters:\n%s", out.String())
	}
}

// TestSmokeModeSymmetry covers symmetry-reduced pruning over TCP: the job's
// Symmetry option crosses the wire, workers canonicalize identically, and the
// merged report stays byte-identical to the single-process one.
func TestSmokeModeSymmetry(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-smoke", "-protocol", "firstvalue", "-n", "4", "-prune", "-symmetry"}, &out); err != nil {
		t.Fatalf("symmetry smoke failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "state pruning (symmetry-reduced):") {
		t.Fatalf("missing symmetry-reduced pruning counters:\n%s", out.String())
	}
}

// TestModeValidation requires exactly one of the three modes.
func TestModeValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "consensus"}, &out); err == nil {
		t.Fatal("mode-less invocation accepted")
	}
	if err := run([]string{"-smoke", "-serve", ":0"}, &out); err == nil {
		t.Fatal("two modes accepted")
	}
}
