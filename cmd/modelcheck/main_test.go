package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestFalsificationGolden pins the README's documented invocation:
// modelcheck -protocol firstvalue-consensus -n 2 -depth 12 must find the
// agreement violations Corollary 33 promises, and exit non-zero.
func TestFalsificationGolden(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-protocol", "firstvalue-consensus", "-n", "2", "-depth", "12"}, &out)
	if err == nil {
		t.Fatal("expected a violations error for the 1-register protocol")
	}
	checkGolden(t, "falsification.golden", out.Bytes())
}

// TestSymmetryGolden pins the -prune -symmetry report, orbit-collapse line
// included: canonical-fingerprint counts depend only on hash equality, never
// on hash values, so they are deterministic across processes and machines.
func TestSymmetryGolden(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-protocol", "firstvalue", "-n", "3", "-depth", "20", "-prune", "-symmetry"}, &out)
	if err != nil {
		t.Fatalf("firstvalue should check clean: %v\n%s", err, out.String())
	}
	checkGolden(t, "symmetry.golden", out.Bytes())
}

// TestCorrectProtocolClean checks the complementary direction: correct
// consensus has no violating schedule at small depth.
func TestCorrectProtocolClean(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "consensus", "-n", "2", "-depth", "10"}, &out); err != nil {
		t.Fatalf("consensus should check clean: %v\n%s", err, out.String())
	}
}

// TestWitnessRoundTrip dumps the falsification run's violating schedules to
// a witness file and replays them: every recorded schedule must reproduce
// its violation.
func TestWitnessRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "witness.json")
	var out bytes.Buffer
	err := run([]string{"-protocol", "firstvalue-consensus", "-n", "2", "-depth", "12", "-witness", path}, &out)
	if err == nil {
		t.Fatal("expected a violations error for the 1-register protocol")
	}
	if !bytes.Contains(out.Bytes(), []byte("wrote 3 violation(s)")) {
		t.Fatalf("witness write not reported:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-replay", path}, &out); err != nil {
		t.Fatalf("replay failed: %v\n%s", err, out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("all 3 violation(s) reproduced")) {
		t.Fatalf("replay verdict missing:\n%s", out.String())
	}
}

// TestReplayMissingWitness keeps the failure loud.
func TestReplayMissingWitness(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-replay", filepath.Join(t.TempDir(), "nope.json")}, &out); err == nil {
		t.Fatal("missing witness accepted")
	}
}

func TestFuzzMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "consensus", "-n", "2", "-fuzz", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("best adversary")) {
		t.Errorf("fuzz mode output missing summary:\n%s", out.String())
	}
}
