package wire

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"revisionist/internal/dist/chaos"
	"revisionist/internal/protocol"
	"revisionist/internal/trace"
)

// TestFrameRoundTrip sends every message kind through the framing and
// requires it back intact.
func TestFrameRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{Kind: KindHello, Hello: &Hello{Version: Version, Slots: 4}},
		{Kind: KindJob, Job: &Job{ID: "j0007", Protocol: "kset", Params: protocol.Params{N: 4, K: 3},
			Opts: trace.ExploreOpts{MaxDepth: 20, MaxRuns: 1000, Prune: true, Checkpoint: true, Engine: "seq"}}},
		{Kind: KindLease, Lease: &Lease{Job: "j0007", ID: 7, Root: []int{0, 2, 1}, Base: 420,
			Table: []trace.FpEntry{{Fp: 1 << 63, Rem: 9}, {Fp: 42, Rem: 1}}}},
		{Kind: KindResult, Result: &Result{Job: "j0007", ID: 7, Outcome: &trace.SubtreeOutcome{
			Runs: 12, Truncated: 3, Exhausted: true, Pruned: 2, Distinct: 5,
			Violations: []trace.SubtreeViolation{{Ord: 4, TruncCum: 1, Schedule: []int{0, 1, 0}, Err: "disagreement"}},
			TruncBits:  []uint64{0b1010}, ErrOrd: -1,
			Closures: []trace.FpEntry{{Fp: 3, Rem: 2}},
		}}},
		{Kind: KindFail, Fail: &Fail{Job: "j0007", Err: "unknown protocol"}},
		{Kind: KindReject, Reject: &Reject{Got: 2, Want: 3, Err: "version skew"}},
		{Kind: KindRetire, Retire: &Retire{Job: "j0007"}},
		{Kind: KindSubmit, Submit: &Submit{Job: Job{Protocol: "firstvalue", Params: protocol.Params{N: 4},
			Opts: trace.ExploreOpts{MaxDepth: 14, Prune: true}}}},
		{Kind: KindAck, Ack: &Ack{ID: "j0008"}},
		{Kind: KindAck, Ack: &Ack{Err: "n=-1: must be positive",
			Fields: []protocol.FieldError{{Field: "n", Value: "-1", Msg: "must be positive"}}}},
		{Kind: KindStatus, Ref: &Ref{ID: "j0008"}},
		{Kind: KindInfo, Info: &JobInfo{ID: "j0008", Protocol: "firstvalue", Params: protocol.Params{N: 4},
			State: "running"}},
		{Kind: KindJobs, Jobs: []JobInfo{{ID: "j0007", State: "done", Runs: 99, Violations: 1}}},
		{Kind: KindReport, Report: &JobReport{
			Info: JobInfo{ID: "j0007", State: "done", Runs: 99, Violations: 1},
			Job:  Job{ID: "j0007", Protocol: "kset", Params: protocol.Params{N: 4, K: 3}},
			Report: &Report{Runs: 99, Truncated: 4, Exhausted: true, Pruned: 7, Distinct: 42,
				Violations: []Violation{{Schedule: []int{1, 0}, Err: "disagreement"}}},
			Witness: &Witness{Protocol: "kset", Params: protocol.Params{N: 4, K: 3}, Engine: "seq", MaxDepth: 20},
		}},
		{Kind: KindShutdown},
	}
	var buf bytes.Buffer
	c := NewConn(&buf)
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			t.Fatalf("send %s: %v", m.Kind, err)
		}
	}
	for _, want := range msgs {
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round trip of %s diverged:\nsent %+v\ngot  %+v", want.Kind, want, got)
		}
	}
}

// TestFrameCap rejects oversized frames on both sides instead of allocating.
func TestFrameCap(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := NewConn(&buf).Recv(); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestInterruptedNeverCrossesTheWire pins the json:"-" contract: the local
// Interrupted closure must not break (or leak into) the job encoding.
func TestInterruptedNeverCrossesTheWire(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	job := &Job{Protocol: "consensus", Opts: trace.ExploreOpts{
		MaxDepth:    8,
		Interrupted: func() bool { return true },
	}}
	errc := make(chan error, 1)
	go func() { errc <- NewConn(client).Send(&Msg{Kind: KindJob, Job: job}) }()
	got, err := NewConn(server).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got.Job.Opts.Interrupted != nil {
		t.Fatal("Interrupted closure crossed the wire")
	}
}

// TestReportRoundTrip pins ReportOf/Explore: counters verbatim, violations
// flattened to messages and reconstructed rendering-equal.
func TestReportRoundTrip(t *testing.T) {
	rep := &trace.ExploreReport{
		Runs: 120, Truncated: 17, Exhausted: true, Pruned: 5, Distinct: 33,
		Violations: []trace.Violation{{Schedule: []int{0, 1, 1}, Err: errString("disagreement")}},
	}
	got := ReportOf(rep).Explore()
	if got.Runs != rep.Runs || got.Truncated != rep.Truncated || got.Exhausted != rep.Exhausted ||
		got.Pruned != rep.Pruned || got.Distinct != rep.Distinct || len(got.Violations) != 1 {
		t.Fatalf("round trip diverged: %+v vs %+v", rep, got)
	}
	if got.Violations[0].Err.Error() != "disagreement" {
		t.Fatalf("violation error lost: %v", got.Violations[0].Err)
	}
}

// TestWitnessOf flattens trace violations to their wire form.
func TestWitnessOf(t *testing.T) {
	w := WitnessOf("firstvalue-consensus", protocol.Params{N: 2}, "seq", 12,
		[]trace.Violation{{Schedule: []int{0, 0, 1}, Err: errString("boom")}})
	if len(w.Violations) != 1 || w.Violations[0].Err != "boom" ||
		len(w.Violations[0].Schedule) != 3 {
		t.Fatalf("bad witness: %+v", w)
	}
}

type errString string

func (e errString) Error() string { return string(e) }

// tornRecv runs one scripted send against a Recv and returns Recv's error.
func tornRecv(t *testing.T, script chaos.Script) error {
	t.Helper()
	client, server := net.Pipe()
	defer server.Close()
	sender := chaos.WrapConn(client, script)
	defer sender.Close()
	go NewConn(sender).Send(&Msg{Kind: KindShutdown})
	_, err := NewConn(server).Recv()
	if err == nil {
		t.Fatal("torn frame accepted")
	}
	return err
}

// TestTornFrameBody pins the descriptive error for a frame cut off mid-body
// (the chaos conn truncates the sender's second write — the body — and
// closes): the reader must name the torn frame and the byte counts, not
// surface a bare unexpected EOF.
func TestTornFrameBody(t *testing.T) {
	err := tornRecv(t, chaos.Script{TruncateWrite: 2})
	if !strings.Contains(err.Error(), "wire: torn frame:") ||
		!strings.Contains(err.Error(), "body bytes") {
		t.Fatalf("torn body error lacks diagnosis: %v", err)
	}
}

// TestTornFrameHeader pins the short-header diagnosis: the length prefix
// itself was cut (2 of its 4 bytes arrive before the close).
func TestTornFrameHeader(t *testing.T) {
	err := tornRecv(t, chaos.Script{TruncateWrite: 1})
	if !strings.Contains(err.Error(), "wire: torn frame header: 2 of 4 bytes") {
		t.Fatalf("torn header error lacks diagnosis: %v", err)
	}
}

// TestCleanEOFIsNotTorn: a connection closed exactly between frames is an
// orderly EOF, not a torn frame — retry loops distinguish the two.
func TestCleanEOFIsNotTorn(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	go client.Close()
	_, err := NewConn(server).Recv()
	if err == nil || strings.Contains(err.Error(), "torn") {
		t.Fatalf("clean close misdiagnosed: %v", err)
	}
}

// TestFrameCapMessage pins the oversized-frame diagnosis on the read side.
func TestFrameCapMessage(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	_, err := NewConn(&buf).Recv()
	if err == nil || !strings.Contains(err.Error(), "exceeds the 67108864-byte cap") {
		t.Fatalf("oversized frame error lacks diagnosis: %v", err)
	}
}

// TestRecvTimeout: with a read timeout armed, a peer that opens a frame and
// stalls forever trips the deadline instead of pinning the reader.
func TestRecvTimeout(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	defer client.Close()
	// Send only a header promising 100 bytes, then go silent.
	go client.Write([]byte{0, 0, 0, 100})
	c := NewConn(server)
	c.SetTimeouts(50*time.Millisecond, 0)
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled frame accepted")
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("expected a timeout, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv ignored its read deadline")
	}
}
