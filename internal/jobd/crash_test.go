// The crash matrix: the tentpole property test of the journal's power-fail
// story. A deterministic queue workload (submits, state transitions,
// progress snapshots, forced compactions) is dry-run once against an
// in-memory crashfs to record its complete filesystem op schedule; then, for
// EVERY op in that schedule and every meaningful tear of it — partial write,
// partial fsync, unapplied or applied create/rename — the workload replays
// from scratch, the power dies at exactly that point, and the queue reopens
// from whatever bytes were durable. The reopened state must satisfy:
//
//   - every acked Put survives (an acked submission is durable at a state no
//     older than the acked one, with restart recovery applied),
//   - an unacked in-flight Put is either absent or present at exactly a
//     state the workload issued — never a mangled hybrid,
//   - no phantom records appear,
//   - the reopened queue accepts new work (the journal is appendable).
//
// Both sync policies run the full matrix: group commit moves the ack point,
// not the guarantee.
package jobd_test

import (
	"fmt"
	"testing"

	"revisionist/internal/dist"
	"revisionist/internal/dist/wire"
	"revisionist/internal/jobd"
	"revisionist/internal/jobd/crashfs"
	"revisionist/internal/protocol"
	"revisionist/internal/sched"
)

// crashOracle tracks, per job id, the recovery-mapped states the workload
// issued (in Put order) and the index of the newest state known durable when
// the power died (-1 = no ack ever reached the client).
type crashOracle struct {
	order []string
	hist  map[string][]jobd.JobState
	acked map[string]int
}

// recovered maps a journaled state to what restart recovery yields for it.
func recovered(rec *jobd.Record) jobd.JobState {
	if rec.State == jobd.StateRunning || (rec.State == jobd.StateInterrupted && rec.Resumable) {
		return jobd.StateQueued
	}
	return rec.State
}

// runCrashWorkload replays the seed-determined workload against fs until it
// finishes or the armed crash kills it, returning the oracle of what was
// issued and what was acked. The workload mixes every journal-writing path:
// admission puts, lifecycle transitions, wave-barrier progress snapshots,
// explicit group-commit flushes, and (via a tiny CompactAt) several online
// compactions.
func runCrashWorkload(seed int64, fs crashfs.FS, mode jobd.SyncMode) *crashOracle {
	o := &crashOracle{hist: map[string][]jobd.JobState{}, acked: map[string]int{}}
	q, err := jobd.OpenQueue("q", jobd.WithFS(fs),
		jobd.WithSyncPolicy(jobd.SyncPolicy{Mode: mode, BatchPuts: 4}))
	if err != nil {
		return o // crashed during open: nothing was issued
	}
	defer q.Close()
	q.CompactAt = 700 // a few hundred bytes per record: compact several times

	var pending []struct {
		id  string
		idx int
	}
	ackPending := func() {
		for _, p := range pending {
			if p.idx > o.acked[p.id] {
				o.acked[p.id] = p.idx
			}
		}
		pending = pending[:0]
	}
	put := func(rec *jobd.Record) bool {
		err := q.Put(rec)
		// The append may have torn durable bytes whether or not Put errored:
		// always record the issued state.
		id := rec.ID
		if _, seen := o.hist[id]; !seen {
			o.order = append(o.order, id)
			o.acked[id] = -1
		}
		o.hist[id] = append(o.hist[id], recovered(rec))
		idx := len(o.hist[id]) - 1
		if err != nil {
			return false
		}
		switch mode {
		case jobd.SyncBatch:
			pending = append(pending, struct {
				id  string
				idx int
			}{id, idx})
			if q.Dirty() == 0 {
				ackPending() // a compaction inside Put synced everything
			}
		default: // SyncEachPut: Put returning nil is the ack
			o.acked[id] = idx
		}
		return true
	}

	rnd := sched.NewRandom(seed)
	var live []*jobd.Record
	states := []jobd.JobState{jobd.StateRunning, jobd.StateDone, jobd.StateFailed,
		jobd.StateCanceled, jobd.StateInterrupted}
	for step := 0; step < 48; step++ {
		switch choice := rnd.IntN(10); {
		case choice < 4 || len(live) == 0: // submit
			rec := &jobd.Record{ID: q.NextID(),
				Session: fmt.Sprintf("s%02d", rnd.IntN(3)),
				Job: wire.Job{Protocol: "kset", Params: protocol.Params{N: 4, K: 3},
					Priority: 1 + rnd.IntN(9)},
				State: jobd.StateQueued}
			live = append(live, rec)
			if !put(rec) {
				return o
			}
		case choice < 7: // lifecycle transition
			rec := live[rnd.IntN(len(live))]
			rec.State = states[rnd.IntN(len(states))]
			rec.Resumable = rec.State == jobd.StateInterrupted
			if rec.State != jobd.StateInterrupted {
				rec.Progress = nil
			}
			if !put(rec) {
				return o
			}
		case choice < 9: // wave-barrier progress snapshot
			rec := live[rnd.IntN(len(live))]
			rec.State = jobd.StateRunning
			rec.Progress = &dist.Progress{Wave: step, Frontier: 8}
			if !put(rec) {
				return o
			}
		default: // explicit group commit
			if q.Flush() != nil {
				return o
			}
			ackPending()
		}
	}
	if q.Flush() == nil {
		ackPending()
	}
	return o
}

// tearsFor enumerates the meaningful tears of one op: none of its effect, a
// partial prefix (write/sync), its full effect with the crash landing right
// after (sync), or applied-vs-not (create/rename).
func tearsFor(op crashfs.Op) []int {
	switch op.Kind {
	case crashfs.OpWrite:
		return dedupe(0, op.Units/2)
	case crashfs.OpSync:
		return dedupe(0, 1, op.Units/2, op.Units)
	default: // create, rename
		return dedupe(0, 1)
	}
}

func dedupe(vals ...int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range vals {
		if v >= 0 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func TestCrashMatrix(t *testing.T) {
	for _, seed := range []int64{1, 20260808} {
		for _, mode := range []jobd.SyncMode{jobd.SyncEachPut, jobd.SyncBatch} {
			t.Run(fmt.Sprintf("seed=%d/sync=%s", seed, mode), func(t *testing.T) {
				// Dry run: record the complete op schedule with no crash armed.
				dry := crashfs.NewMem()
				runCrashWorkload(seed, dry, mode)
				ops := dry.Ops()
				if len(ops) < 40 {
					t.Fatalf("workload issued only %d fs ops; too small for a meaningful matrix", len(ops))
				}
				points := 0
				for opIdx, op := range ops {
					for _, tear := range tearsFor(op) {
						points++
						m := crashfs.NewMem()
						m.CrashAfter(opIdx+1, tear)
						o := runCrashWorkload(seed, m, mode)
						m.PowerCut()
						m.Disarm()
						validateCrashPoint(t, m, o,
							fmt.Sprintf("crash at op %d/%d (%s %s, tear %d)",
								opIdx+1, len(ops), op.Kind, op.Name, tear))
						if t.Failed() {
							return
						}
					}
				}
				t.Logf("seed %d sync=%s: %d fs ops, %d crash points validated", seed, mode, len(ops), points)
			})
		}
	}
}

// validateCrashPoint reopens the queue from the durable bytes and checks the
// crash-consistency contract against the oracle.
func validateCrashPoint(t *testing.T, m *crashfs.Mem, o *crashOracle, at string) {
	t.Helper()
	q, err := jobd.OpenQueue("q", jobd.WithFS(m))
	if err != nil {
		t.Fatalf("%s: reopen failed: %v", at, err)
	}
	defer q.Close()
	for _, id := range o.order {
		hist, acked := o.hist[id], o.acked[id]
		rec := q.Get(id)
		if rec == nil {
			if acked >= 0 {
				t.Fatalf("%s: acked job %s (state %s) vanished", at, id, hist[acked])
			}
			continue // unacked and absent: the clean outcome
		}
		lo := max(acked, 0)
		ok := false
		for i := lo; i < len(hist); i++ {
			if rec.State == hist[i] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("%s: job %s reopened as %q; issued states from ack point: %v",
				at, id, rec.State, hist[lo:])
		}
	}
	for _, info := range q.List() {
		if _, known := o.hist[info.ID]; !known {
			t.Fatalf("%s: phantom record %s appeared from nowhere", at, info.ID)
		}
	}
	// The reopened queue must accept new work: the journal is appendable.
	if err := q.Put(&jobd.Record{ID: q.NextID(), State: jobd.StateQueued,
		Job: wire.Job{Protocol: "kset", Params: protocol.Params{N: 4, K: 3}}}); err != nil {
		t.Fatalf("%s: reopened queue rejected new work: %v", at, err)
	}
}
