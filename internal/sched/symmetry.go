package sched

import (
	"fmt"
	"hash/maphash"
)

// This file is the symmetry-aware path of the fingerprint contract
// (fingerprint.go): configurations that differ only by a permutation of
// interchangeable processes — a process-permutation orbit — are reduced to
// one canonical fingerprint, so stateful exploration stores and prunes per
// orbit instead of per member (up to |class|! fewer states).
//
// The canonical fingerprint of a configuration is the minimum, over every
// element π of the declared symmetry group, of the configuration hash with
// the identity renaming π applied while hashing: process states are hashed
// in π-permuted slot order, components owned by class members are
// co-permuted, embedded pids are rewritten to π(pid), and (when declared)
// input values are rewritten to their π-renamed input role. Because the set
// {hash under π : π in G} is the same for every member of one orbit, the
// minimum is orbit-invariant; and because each per-π hash stream encodes the
// renamed configuration injectively, two different orbits collide only by a
// 64-bit hash collision — the same (vanishingly unlikely) caveat plain
// fingerprint pruning already accepts. Exactness of the bounded search is
// therefore preserved: a violation is reported iff its orbit contains one.
//
// Soundness of collapsing an orbit requires the declared group to be an
// automorphism group of the checked system: class members must run the same
// program up to their own input and their owned components, and the check
// must be invariant under permuting class members' outputs (all tasks here
// validate output multisets) and — when input renaming is declared — under a
// bijective renaming of class members' input values (true for the discrete
// tasks, false for eps-approximate agreement). Declarations live in the
// protocol registry (protocol.Protocol.Symmetry); this package only provides
// the group mechanics.

// MaxSymmetryGroup caps the enumerated group size (8! — eight
// interchangeable processes). Beyond it NewCanonicalizer degenerates to the
// identity group (symmetry reduction becomes a no-op) rather than spending
// more time permuting than exploring; exhaustive search at such widths is
// out of reach regardless.
const MaxSymmetryGroup = 40320

// CanonicalFingerprinter is the symmetry-aware side of Fingerprinter:
// implementors append their state with every embedded process identity and
// every declared input value rewritten through the Canon. Objects whose
// state embeds neither may fall back to their plain AppendFingerprint.
type CanonicalFingerprinter interface {
	AppendCanonicalFingerprint(h *maphash.Hash, c *Canon)
}

// SymmetrySpec declares the symmetry group of an nprocs-process system.
type SymmetrySpec struct {
	// N is the number of processes.
	N int
	// Classes are disjoint sets of interchangeable pids: processes running
	// the same program up to their own input and owned components. The group
	// is the product of the symmetric groups on each class.
	Classes [][]int
	// Owned lists, per pid, the components that process owns (writes
	// exclusively, addressed by its identity); they are co-permuted with the
	// process slots. Nil or short slices mean "owns none"; class members must
	// own the same number of components.
	Owned [][]int
	// Roles maps input values to the pid they belong to, for classes whose
	// collapse additionally renames inputs (the task must be invariant under
	// bijective renaming of those values). Values must be comparable.
	Roles map[any]int
}

// Canon is one symmetry-group element π, in the forms value hashing needs:
// slot sources for reordering process states, component sources for owned
// components, the pid image for embedded identities, and the renamed role
// of declared input values.
type Canon struct {
	perm    []int // π: pid -> canonical slot
	slotSrc []int // π⁻¹: canonical slot -> pid
	compSrc []int // ρ⁻¹ over owned components; identity beyond its length
	compDst []int // ρ: component -> canonical position
	roles   map[any]int
}

// Pid returns π(pid), the canonical identity an embedded pid is hashed as.
func (c *Canon) Pid(pid int) int {
	if c == nil || pid < 0 || pid >= len(c.perm) {
		return pid
	}
	return c.perm[pid]
}

// SlotSrc returns the pid whose state is hashed at canonical slot s.
func (c *Canon) SlotSrc(s int) int {
	if c == nil || s < 0 || s >= len(c.slotSrc) {
		return s
	}
	return c.slotSrc[s]
}

// CompSrc returns the component hashed at canonical component position j
// (identity for components no class member owns).
func (c *Canon) CompSrc(j int) int {
	if c == nil || j < 0 || j >= len(c.compSrc) {
		return j
	}
	return c.compSrc[j]
}

// CompDst returns ρ(j), the canonical position an embedded component index
// is rewritten to (identity for components no class member owns).
func (c *Canon) CompDst(j int) int {
	if c == nil || j < 0 || j >= len(c.compDst) {
		return j
	}
	return c.compDst[j]
}

// Role returns the π-renamed input role of v, if v is a declared input
// value: the hash writes the role token instead of the raw value, so orbit
// members that wrote different class inputs still hash identically.
func (c *Canon) Role(v any) (int, bool) {
	if c == nil || c.roles == nil {
		return 0, false
	}
	j, ok := c.roles[v]
	if !ok {
		return 0, false
	}
	return c.perm[j], true
}

// Canonicalizer enumerates a symmetry group once and computes canonical
// fingerprints by minimizing the configuration hash over it. It is
// read-only after construction and safe to share across systems and
// goroutines.
type Canonicalizer struct {
	spec   SymmetrySpec
	elems  []*Canon // the full group; elems[0] is the identity
	capped bool
}

// NewCanonicalizer validates spec and enumerates its group. Structural
// errors (out-of-range or overlapping class pids, mismatched owned-component
// counts) are returned; a group larger than MaxSymmetryGroup is not an
// error — the canonicalizer degenerates to the identity group (Capped
// reports it) and symmetry reduction becomes a no-op.
func NewCanonicalizer(spec SymmetrySpec) (*Canonicalizer, error) {
	if spec.N < 1 {
		return nil, fmt.Errorf("sched: symmetry over %d processes", spec.N)
	}
	seen := make([]bool, spec.N)
	ownedOf := func(pid int) []int {
		if pid < len(spec.Owned) {
			return spec.Owned[pid]
		}
		return nil
	}
	size := 1
	for _, cl := range spec.Classes {
		for i, pid := range cl {
			if pid < 0 || pid >= spec.N {
				return nil, fmt.Errorf("sched: symmetry class pid %d out of range [0, %d)", pid, spec.N)
			}
			if seen[pid] {
				return nil, fmt.Errorf("sched: pid %d in two symmetry classes", pid)
			}
			seen[pid] = true
			if len(ownedOf(pid)) != len(ownedOf(cl[0])) {
				return nil, fmt.Errorf("sched: symmetry class %v: pid %d owns %d components, pid %d owns %d (must match)",
					cl, pid, len(ownedOf(pid)), cl[0], len(ownedOf(cl[0])))
			}
			_ = i
		}
		if size <= MaxSymmetryGroup {
			size *= factorial(len(cl))
		}
	}
	cz := &Canonicalizer{spec: spec}
	if size > MaxSymmetryGroup {
		cz.capped = true
		cz.elems = []*Canon{cz.newCanon(identityPerm(spec.N))}
		return cz, nil
	}
	perms := [][]int{identityPerm(spec.N)}
	for _, cl := range spec.Classes {
		if len(cl) < 2 {
			continue
		}
		var next [][]int
		forEachPermutation(len(cl), func(p []int) {
			for _, base := range perms {
				perm := append([]int(nil), base...)
				for i, pid := range cl {
					perm[pid] = cl[p[i]]
				}
				next = append(next, perm)
			}
		})
		perms = next
	}
	cz.elems = make([]*Canon, len(perms))
	for i, p := range perms {
		cz.elems[i] = cz.newCanon(p)
	}
	return cz, nil
}

// newCanon derives the lookup tables of one group element from π.
func (cz *Canonicalizer) newCanon(perm []int) *Canon {
	c := &Canon{perm: perm, slotSrc: make([]int, len(perm)), roles: cz.spec.Roles}
	maxComp := -1
	for pid, own := range cz.spec.Owned {
		if pid < len(perm) {
			for _, j := range own {
				maxComp = max(maxComp, j)
			}
		}
	}
	if maxComp >= 0 {
		c.compSrc = identityPerm(maxComp + 1)
		c.compDst = identityPerm(maxComp + 1)
	}
	for pid, s := range perm {
		c.slotSrc[s] = pid
		// Component own[pid][g] moves to position own[π(pid)][g]: the state of
		// pid lands in slot π(pid), and with it its owned components.
		if pid < len(cz.spec.Owned) {
			src, dst := cz.spec.Owned[pid], cz.spec.Owned[s]
			for g := range src {
				c.compSrc[dst[g]] = src[g]
				c.compDst[src[g]] = dst[g]
			}
		}
	}
	return c
}

// Trivial reports whether the group is the identity alone — canonical and
// plain fingerprints then pick out exactly the same states (though not the
// same hash values when Roles are declared).
func (cz *Canonicalizer) Trivial() bool { return len(cz.elems) == 1 && cz.spec.Roles == nil }

// Size returns the enumerated group size.
func (cz *Canonicalizer) Size() int { return len(cz.elems) }

// Capped reports that the declared group exceeded MaxSymmetryGroup and was
// degenerated to the identity.
func (cz *Canonicalizer) Capped() bool { return cz.capped }

// Canonical computes the canonical fingerprint: appendCfg must append the
// full configuration under the given Canon (slots, components, pids and
// roles rewritten); the minimum hash over the group is returned. h is
// scratch space, reset per element.
func (cz *Canonicalizer) Canonical(h *maphash.Hash, appendCfg func(h *maphash.Hash, c *Canon)) uint64 {
	best := ^uint64(0)
	for _, c := range cz.elems {
		h.Reset()
		appendCfg(h, c)
		if v := h.Sum64(); v < best {
			best = v
		}
	}
	return best
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// forEachPermutation calls fn with every permutation of [0, n) (Heap's
// algorithm; fn must not retain the slice).
func forEachPermutation(n int, fn func(p []int)) {
	p := identityPerm(n)
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(p)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				p[i], p[k-1] = p[k-1], p[i]
			} else {
				p[0], p[k-1] = p[k-1], p[0]
			}
		}
	}
	rec(n)
}
