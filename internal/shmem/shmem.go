// Package shmem implements the base objects of the paper's model (§2):
// multi-writer registers, single-writer and multi-writer atomic snapshot
// objects, and register-built snapshot implementations.
//
// Every operation on an atomic object is exactly one scheduler step (gated
// through a Stepper). Register-built snapshots take one step per underlying
// register operation, which is what the paper's space/step accounting
// ("each m-component snapshot object counts as m registers") expects.
package shmem

import (
	"fmt"

	"revisionist/internal/sched"
)

// Value is the contents of a register or snapshot component, and the single
// source of truth for every value type in the repository: protocol values
// (proto.Value), augmented snapshot values (augsnap.Value) and task
// inputs/outputs (spec.Value) are all re-exports of this alias. Values are
// treated as immutable once written: writers must not mutate a value after
// passing it to Write/Update, and readers must not mutate returned values.
type Value = any

// Stepper gates base-object operations. Both execution engines
// (*sched.Runner and *sched.SeqEngine) implement it; Free can be used to run
// without a scheduler (single-threaded tests, local simulation).
type Stepper = sched.Stepper

// Free is a Stepper that admits every operation immediately. It makes shared
// objects usable from a single goroutine without a scheduler.
type Free struct{}

// Step implements Stepper.
func (Free) Step(int, sched.Op) {}

// Register is an atomic multi-writer multi-reader register.
type Register struct {
	name    string
	stepper Stepper
	v       Value
}

// NewRegister returns a register with the given initial value.
func NewRegister(name string, st Stepper, initial Value) *Register {
	return &Register{name: name, stepper: st, v: initial}
}

// Write atomically sets the register's value.
func (r *Register) Write(pid int, v Value) {
	r.stepper.Step(pid, sched.Op{Object: r.name, Kind: sched.OpWrite, Comp: -1})
	r.v = v
}

// Read atomically returns the register's value.
func (r *Register) Read(pid int) Value {
	r.stepper.Step(pid, sched.Op{Object: r.name, Kind: sched.OpRead, Comp: -1})
	return r.v
}

// SWSnapshot is an atomic single-writer snapshot object with one component
// per process: component i may be updated only by process i (§2).
type SWSnapshot struct {
	name    string
	stepper Stepper
	comps   []Value
	updates int
	scans   int
	rec     Recorder
}

// NewSWSnapshot returns an f-component single-writer snapshot whose
// components are all initial.
func NewSWSnapshot(name string, st Stepper, f int, initial Value) *SWSnapshot {
	comps := make([]Value, f)
	for i := range comps {
		comps[i] = initial
	}
	return &SWSnapshot{name: name, stepper: st, comps: comps}
}

// SetRecorder installs a history recorder (see Recorder). It must be called
// before the object is shared.
func (s *SWSnapshot) SetRecorder(r Recorder) { s.rec = r }

// Components returns the number of components (= registers it accounts for).
func (s *SWSnapshot) Components() int { return len(s.comps) }

// Update atomically sets process pid's own component.
func (s *SWSnapshot) Update(pid int, v Value) {
	if pid < 0 || pid >= len(s.comps) {
		panic(fmt.Sprintf("shmem: SWSnapshot %q update by out-of-range pid %d", s.name, pid))
	}
	s.stepper.Step(pid, sched.Op{Object: s.name, Kind: sched.OpUpdate, Comp: pid})
	s.comps[pid] = v
	s.updates++
	if s.rec != nil {
		s.rec.RecordUpdate(pid, pid, v)
	}
}

// Scan atomically returns the value of every component.
func (s *SWSnapshot) Scan(pid int) []Value {
	out := make([]Value, len(s.comps))
	s.ScanInto(pid, out)
	return out
}

// ScanInto is Scan into a caller-provided slice of length Components(),
// avoiding the result allocation on hot paths; the caller must not retain
// component values beyond their copy semantics (Value contents are immutable
// once written).
func (s *SWSnapshot) ScanInto(pid int, out []Value) {
	if len(out) != len(s.comps) {
		panic(fmt.Sprintf("shmem: SWSnapshot %q ScanInto with %d-slot buffer for %d components", s.name, len(out), len(s.comps)))
	}
	s.stepper.Step(pid, sched.Op{Object: s.name, Kind: sched.OpScan, Comp: -1})
	copy(out, s.comps)
	s.scans++
	if s.rec != nil {
		s.rec.RecordScan(pid, out)
	}
}

// OpCounts reports the number of updates and scans applied so far.
func (s *SWSnapshot) OpCounts() (updates, scans int) { return s.updates, s.scans }

// MWSnapshot is an atomic m-component multi-writer snapshot object: every
// process may update every component (§2). It is the object of the paper's
// simulated system.
type MWSnapshot struct {
	name    string
	stepper Stepper
	comps   []Value
	updates int
	scans   int
	rec     Recorder
}

// NewMWSnapshot returns an m-component multi-writer snapshot whose components
// are all initial.
func NewMWSnapshot(name string, st Stepper, m int, initial Value) *MWSnapshot {
	comps := make([]Value, m)
	for i := range comps {
		comps[i] = initial
	}
	return &MWSnapshot{name: name, stepper: st, comps: comps}
}

// SetRecorder installs a history recorder.
func (s *MWSnapshot) SetRecorder(r Recorder) { s.rec = r }

// Components returns the number of components (= registers it accounts for).
func (s *MWSnapshot) Components() int { return len(s.comps) }

// Update atomically sets component j to v.
func (s *MWSnapshot) Update(pid, j int, v Value) {
	if j < 0 || j >= len(s.comps) {
		panic(fmt.Sprintf("shmem: MWSnapshot %q update to out-of-range component %d", s.name, j))
	}
	s.stepper.Step(pid, sched.Op{Object: s.name, Kind: sched.OpUpdate, Comp: j})
	s.comps[j] = v
	s.updates++
	if s.rec != nil {
		s.rec.RecordUpdate(pid, j, v)
	}
}

// Scan atomically returns the value of every component.
func (s *MWSnapshot) Scan(pid int) []Value {
	s.stepper.Step(pid, sched.Op{Object: s.name, Kind: sched.OpScan, Comp: -1})
	out := make([]Value, len(s.comps))
	copy(out, s.comps)
	s.scans++
	if s.rec != nil {
		s.rec.RecordScan(pid, out)
	}
	return out
}

// OpCounts reports the number of updates and scans applied so far.
func (s *MWSnapshot) OpCounts() (updates, scans int) { return s.updates, s.scans }

// Recorder receives the linearized history of a snapshot object. Because the
// gated scheduler serializes operations, the callback order is the
// linearization order.
//
// The view slice passed to RecordScan is only valid for the duration of the
// callback: scan fast paths (SWSnapshot.ScanInto) reuse the caller's buffer
// across scans. A Recorder that wants to keep a view must copy it.
type Recorder interface {
	RecordUpdate(pid, comp int, v Value)
	RecordScan(pid int, view []Value)
}
