package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"revisionist/internal/dist"
	"revisionist/internal/harness"
	"revisionist/internal/jobd"
	"revisionist/internal/obs"
	"revisionist/internal/protocol"
	"revisionist/internal/trace"
)

// obsSmoke is the `make obs-smoke` payload: the jobd smoke topology (daemon
// + two TCP workers) with the full observability surface switched on — a
// live registry, a journal on disk, instrumented in-process workers, and
// the admin HTTP listener. It runs one real job end to end and then proves
// the flight recorder's two contracts at once: every endpoint answers
// (health, readiness, metrics, jobs, per-job trace, pprof index) with every
// required metric series present, and the fully instrumented report is
// still byte-identical to a plain single-process run.
func obsSmoke(out io.Writer, addr string) error {
	opts := harness.Options{Protocol: "kset", Params: protocol.Params{N: 4, K: 3},
		MaxDepth: 12, MaxViolations: 3, Prune: true, Symmetry: true}

	dir, err := os.MkdirTemp("", "checkd-obs-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	reg := obs.NewRegistry()
	d, err := jobd.New(jobd.Config{Dir: dir, MaxActive: 2,
		Resolve: harness.Resolve, Validate: harness.ValidateJob, Registry: reg})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()
	go d.Serve(ln)

	// Two in-process workers with the search core instrumented onto the
	// daemon's registry — the same wiring checkd's own spawned workers get.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return
			}
			dist.WorkCfg(ctx, conn, dist.WorkConfig{Slots: 2, Obs: trace.NewSearchObs(reg)}, harness.Resolve)
		}()
	}
	defer func() {
		cancel()
		<-runDone
		wg.Wait()
	}()

	adminLn, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: d.AdminHandler(nil)}
	go srv.Serve(adminLn)
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		srv.Shutdown(sctx)
	}()
	base := "http://" + adminLn.Addr().String()
	fmt.Fprintf(out, "smoke: daemon + 2 instrumented TCP workers, admin on %s\n", base)

	if body, err := get(base + "/healthz"); err != nil || !strings.Contains(body, "ok") {
		return fmt.Errorf("/healthz: %q, %v", body, err)
	}
	if body, err := get(base + "/readyz"); err != nil || !strings.Contains(body, "ready") {
		return fmt.Errorf("/readyz: %q, %v", body, err)
	}
	if body, err := get(base + "/debug/pprof/"); err != nil || !strings.Contains(body, "goroutine") {
		return fmt.Errorf("/debug/pprof/: %v", err)
	}

	cl, err := jobd.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer cl.Close()
	job, err := harness.CheckJob(opts)
	if err != nil {
		return err
	}
	ack, err := cl.Submit(job)
	if err != nil {
		return err
	}
	if ack.Err != "" {
		return fmt.Errorf("smoke submission rejected: %s", ack.Err)
	}
	rep, err := awaitReport(cl, ack.ID)
	if err != nil {
		return err
	}

	// The determinism contract: the fully instrumented service run renders
	// byte-identically to a plain single-process check.
	single, err := harness.Check(opts)
	if err != nil {
		return err
	}
	var want, got bytes.Buffer
	harness.WriteCheckReport(&want, single, opts.MaxDepth, opts.Prune, opts.Symmetry, nil)
	check := &harness.CheckReport{Protocol: single.Protocol, Params: rep.Job.Params, Explore: rep.Report.Explore()}
	harness.WriteCheckReport(&got, check, opts.MaxDepth, opts.Prune, opts.Symmetry, nil)
	out.Write(got.Bytes())
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		return fmt.Errorf("instrumented report diverges from single-process:\n--- single ---\n%s--- daemon ---\n%s",
			want.String(), got.String())
	}
	fmt.Fprintln(out, "smoke: instrumented report byte-identical to single-process run")

	// The exposition must carry every layer's series, with the job's work
	// visible in them.
	metrics, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	required := []string{
		"search_runs_total",
		"search_states_distinct_total",
		"dist_leases_issued_total",
		"dist_worker_joins_total",
		`dist_wire_frames_total{kind="result",dir="in"}`,
		"jobd_queue_depth",
		`jobd_jobs{state="done"} 1`,
		"jobd_journal_bytes_total",
		"jobd_fsync_seconds_count",
		"jobd_sync_batch_puts_sum",
	}
	for _, series := range required {
		if !strings.Contains(metrics, series) {
			return fmt.Errorf("/metrics is missing %q", series)
		}
	}
	fmt.Fprintf(out, "smoke: /metrics carries all %d required series\n", len(required))

	jobs, err := get(base + "/jobs")
	if err != nil {
		return err
	}
	if !strings.Contains(jobs, ack.ID) || !strings.Contains(jobs, "MaxQueued") {
		return fmt.Errorf("/jobs listing is missing the job or the queue headroom: %s", jobs)
	}

	traceBody, err := get(base + "/jobs/" + ack.ID + "/trace")
	if err != nil {
		return err
	}
	var events struct {
		Job    string
		Events []struct{ Kind string }
	}
	if err := json.Unmarshal([]byte(traceBody), &events); err != nil {
		return fmt.Errorf("/jobs/%s/trace: %v", ack.ID, err)
	}
	kinds := map[string]bool{}
	for _, e := range events.Events {
		kinds[e.Kind] = true
	}
	for _, kind := range []string{"queued", "start", "lease", "finish", "done"} {
		if !kinds[kind] {
			return fmt.Errorf("/jobs/%s/trace is missing a %q event (got %v)", ack.ID, kind, kinds)
		}
	}
	fmt.Fprintf(out, "smoke: flight recording of %s spans queued -> leases -> done (%d events)\n",
		ack.ID, len(events.Events))
	return nil
}

// get fetches one admin URL, failing on any non-200 answer.
func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return string(body), fmt.Errorf("%s: %s", url, resp.Status)
	}
	return string(body), nil
}
