package augsnap

import "fmt"

// This file decomposes the augmented snapshot operations into resumable
// cursors: one gated H-operation per Step call. They are the single
// implementation of Algorithms 3 and 4 — AugSnapshot.Scan and
// AugSnapshot.BlockUpdate are loops over them — and they are what lets the
// revisionist simulators run as native step machines on the sequential
// engine (one base-object step per Machine.Resume, no goroutines and no
// coroutines).

// ScanOp is a resumable Scan (Algorithm 3). Each Step performs exactly one
// H operation; once Step returns true the result is available from View.
type ScanOp struct {
	a   *AugSnapshot
	pid int

	st       int // 0: first collect; 1: help; 2: second collect + compare
	h, hp    HView
	startSeq int
	hops     int
	view     []Value
}

// StartScan begins a Scan by process pid without performing any H operation.
func (a *AugSnapshot) StartScan(pid int) *ScanOp {
	return &ScanOp{a: a, pid: pid}
}

// Step performs the Scan's next H operation and reports whether the Scan
// completed.
func (s *ScanOp) Step() bool {
	a := s.a
	switch s.st {
	case 0: // first collect
		s.hp = a.scanH(s.pid)
		s.startSeq = a.log.lastSeq()
		s.hops = 1
		s.st = 1
		return false
	case 1: // help every other process with one update
		s.h = s.hp
		recs := a.helpScratch[:0]
		for j := 0; j < a.f; j++ {
			if j != s.pid {
				recs = append(recs, HelpRec{Dst: j, Idx: s.h.numBU(j), H: s.h})
			}
		}
		a.appendHelp(s.pid, recs)
		s.hops++
		s.st = 2
		return false
	case 2: // re-collect; done when two consecutive results coincide
		s.hp = a.scanH(s.pid)
		s.hops++
		if s.h.eq(s.hp) {
			s.view = s.h.viewInto(a.m, a.bestScratch)
			a.log.recordScanOp(s.pid, s.view, s.startSeq, s.hops)
			s.st = 3
			return true
		}
		s.st = 1
		return false
	default:
		panic("augsnap: Step on a completed ScanOp")
	}
}

// View returns the scanned view; it must only be called after Step returned
// true.
func (s *ScanOp) View() []Value {
	if s.st != 3 {
		panic("augsnap: View on an unfinished ScanOp")
	}
	return s.view
}

// BlockUpdateOp is a resumable Block-Update (Algorithm 4). Each Step performs
// exactly one H operation; once Step returns true the outcome is available
// from Result.
type BlockUpdateOp struct {
	a     *AugSnapshot
	pid   int
	comps []int
	vals  []Value
	b     int // index of this Block-Update; equals #h_i below

	st     int // 0: line 2 scan; 1: line 4 append; 2: line 5 scan; 3: lines 6-7 help; 4: lines 8-10 check; 5: lines 11-16 read
	h, g   HView
	hSeq   int // log position of the line-2 scan
	rec    *BURecord
	view   []Value
	atomic bool
}

// StartBlockUpdate begins a Block-Update by process pid without performing
// any H operation. It validates the component set.
func (a *AugSnapshot) StartBlockUpdate(pid int, comps []int, vals []Value) *BlockUpdateOp {
	if len(comps) == 0 || len(comps) != len(vals) {
		panic(fmt.Sprintf("augsnap: BlockUpdate with %d components and %d values", len(comps), len(vals)))
	}
	seen := make(map[int]bool, len(comps))
	for _, c := range comps {
		if c < 0 || c >= a.m || seen[c] {
			panic(fmt.Sprintf("augsnap: BlockUpdate components %v invalid for m=%d", comps, a.m))
		}
		seen[c] = true
	}
	return &BlockUpdateOp{a: a, pid: pid, comps: comps, vals: vals, b: a.buCount[pid]}
}

// Step performs the Block-Update's next H operation and reports whether the
// operation completed (atomically or by yielding).
func (u *BlockUpdateOp) Step() bool {
	a := u.a
	switch u.st {
	case 0: // line 2: h <- H.scan()
		u.h = a.scanH(u.pid)
		u.hSeq = a.log.lastSeq()
		u.st = 1
		return false
	case 1: // lines 3-4: generate the timestamp, append the triples
		t := a.newTimestamp(u.pid, u.h)
		triples := make([]Triple, len(u.comps))
		for g := range u.comps {
			triples[g] = Triple{Comp: u.comps[g], Val: u.vals[g], TS: t}
		}
		a.appendTriples(u.pid, triples)
		a.buCount[u.pid]++
		u.rec = a.log.openBU(u.pid, u.b, u.comps, u.vals, t)
		u.rec.HSeq, u.rec.XSeq = u.hSeq, a.log.lastSeq()
		u.st = 2
		return false
	case 2: // line 5: scan for helping
		u.g = a.scanH(u.pid)
		u.rec.GSeq = a.log.lastSeq()
		u.st = 3
		return false
	case 3: // lines 6-7: help lower-id processes with one update
		recs := a.helpScratch[:0]
		for j := 0; j < u.pid; j++ {
			recs = append(recs, HelpRec{Dst: j, Idx: u.g.numBU(j), H: u.g})
		}
		a.appendHelp(u.pid, recs)
		u.rec.HelpSeq = a.log.lastSeq()
		u.st = 4
		return false
	case 4: // lines 8-10: yield if a lower-id process appended triples since h
		hp := a.scanH(u.pid)
		u.rec.CheckSeq = a.log.lastSeq()
		for j := 0; j < u.pid; j++ {
			if hp.numBU(j) > u.h.numBU(j) {
				a.log.closeBUYield(u.rec)
				u.st = 6
				return true
			}
		}
		u.st = 5
		return false
	case 5: // lines 11-16: determine the latest recorded scan, return its view
		r := a.scanH(u.pid)
		u.rec.ReadSeq = a.log.lastSeq()
		last := u.h
		for j := 0; j < a.f; j++ {
			if j == u.pid {
				continue
			}
			rj := lookupHelp(r[j].Help, u.pid, u.b)
			if rj != nil && last.properPrefix(rj) {
				last = rj
			}
		}
		u.view = last.viewInto(a.m, a.bestScratch)
		u.atomic = true
		a.log.closeBUAtomic(u.rec, last, u.view)
		u.st = 6
		return true
	default:
		panic("augsnap: Step on a completed BlockUpdateOp")
	}
}

// Result returns the Block-Update's outcome: (view, true) for an atomic
// Block-Update, (nil, false) for a yield. It must only be called after Step
// returned true.
func (u *BlockUpdateOp) Result() ([]Value, bool) {
	if u.st != 6 {
		panic("augsnap: Result on an unfinished BlockUpdateOp")
	}
	return u.view, u.atomic
}
