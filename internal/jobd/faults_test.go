// Daemon fault-tolerance tests: the journal stays bounded under churn, a
// restart resumes a mid-run job from its wave-barrier snapshot re-leasing
// only the unfinished frontier, and a seeded chaos schedule (crash, hang,
// flaky dials) never changes a byte of any fetched report.
package jobd_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"revisionist/internal/dist"
	"revisionist/internal/dist/chaos"
	"revisionist/internal/dist/wire"
	"revisionist/internal/harness"
	"revisionist/internal/jobd"
	"revisionist/internal/protocol"
)

// TestQueueOnlineCompaction: an upsert-churned journal must stay bounded by
// the compaction threshold instead of growing per state change, and a
// reopen after heavy churn must reconstruct the live set exactly.
func TestQueueOnlineCompaction(t *testing.T) {
	dir := t.TempDir()
	q, err := jobd.OpenQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	q.CompactAt = 4096
	recs := make([]*jobd.Record, 4)
	for i := range recs {
		recs[i] = &jobd.Record{ID: q.NextID(),
			Job:   wire.Job{Protocol: "firstvalue", Params: protocol.Params{N: 4}},
			State: jobd.StateQueued}
	}
	states := []jobd.JobState{jobd.StateQueued, jobd.StateRunning, jobd.StateDone}
	for round := 0; round < 300; round++ {
		rec := recs[round%len(recs)]
		rec.State = states[round%len(states)]
		if err := q.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "jobs.jsonl")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 300 upserts of ~300-byte lines is ~90 KiB unbounded; compaction must
	// have kept the file within the threshold plus one append window.
	if fi.Size() > 2*q.CompactAt {
		t.Fatalf("journal grew to %d bytes despite CompactAt=%d", fi.Size(), q.CompactAt)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	q2, err := jobd.OpenQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if n := len(q2.List()); n != len(recs) {
		t.Fatalf("reopened queue lists %d records, want %d", n, len(recs))
	}
	for _, rec := range recs {
		got := q2.Get(rec.ID)
		if got == nil {
			t.Fatalf("record %s lost in compaction", rec.ID)
		}
		want := rec.State
		// Restart recovery re-queues running jobs; everything else must
		// survive verbatim.
		if want == jobd.StateRunning {
			want = jobd.StateQueued
		}
		if got.State != want {
			t.Fatalf("record %s reopened as %s, want %s", rec.ID, got.State, want)
		}
	}
}

// TestDaemonRestartResumesMidSubtree is the resume acceptance gate: a
// daemon killed mid-run restarts from the journaled wave-barrier snapshot,
// re-leases only the unfinished frontier (the resuming log line proves
// restored > 0), and the finished report is byte-identical to the solo run.
func TestDaemonRestartResumesMidSubtree(t *testing.T) {
	dir := t.TempDir()
	opts := harness.Options{Protocol: "kset", Params: protocol.Params{N: 4, K: 3},
		MaxDepth: 12, MaxViolations: 3, Prune: true, Symmetry: true}
	solo := soloWireReport(t, opts)
	job, err := harness.CheckJob(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: one paced worker (every frame delayed) so wave barriers pass
	// slowly enough to catch the job genuinely mid-run.
	td := startDaemon(t, jobd.Config{Dir: dir, MaxActive: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", td.addr)
		if err != nil {
			return
		}
		dist.Work(context.Background(),
			chaos.WrapConn(conn, chaos.Script{WriteDelay: 3 * time.Millisecond}),
			2, harness.Resolve)
	}()
	cl, err := jobd.Dial(td.addr)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := cl.Submit(job)
	if err != nil || ack.Err != "" {
		t.Fatalf("submit: %v / %s", err, ack.Err)
	}
	waitState(t, cl, ack.ID, "running")
	// Wait for a wave-barrier snapshot to reach the journal, then pull the
	// plug while the job is demonstrably unfinished.
	path := filepath.Join(dir, "jobs.jsonl")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if raw, err := os.ReadFile(path); err == nil && strings.Contains(string(raw), `"Progress":{`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress snapshot ever reached the journal")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cl.Close()
	td.shutdown(t)
	wg.Wait()

	// The journal's final word: interrupted, resumable, carrying a snapshot
	// that is neither empty nor complete.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec jobd.Record
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var r jobd.Record
		if err := json.Unmarshal([]byte(line), &r); err == nil && r.ID == ack.ID {
			rec = r
		}
	}
	if rec.State != jobd.StateInterrupted || !rec.Resumable || rec.Progress == nil {
		t.Fatalf("drained job journaled as %s (resumable=%v, progress=%v); want interrupted+resumable+snapshot",
			rec.State, rec.Resumable, rec.Progress != nil)
	}
	completed := rec.Progress.Completed()
	if completed == 0 || completed >= rec.Progress.Frontier {
		t.Fatalf("snapshot completed %d of %d subtrees; the test needs a genuine mid-run interrupt",
			completed, rec.Progress.Frontier)
	}

	// Phase 2: restart with a fast worker; the job must resume (the log line
	// names how much was restored) and finish byte-identical to solo.
	var mu sync.Mutex
	var logs []string
	td2 := startDaemon(t, jobd.Config{Dir: dir, MaxActive: 1,
		Logf: func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		}})
	worker(t, td2.addr, 2, &wg)
	cl2, err := jobd.Dial(td2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	waitState(t, cl2, ack.ID, "done")
	rep, err := cl2.Fetch(ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportJSON(t, rep.Report), reportJSON(t, solo); got != want {
		t.Fatalf("resumed report diverged from solo run:\nwant %s\ngot  %s", want, got)
	}
	mu.Lock()
	resumed := false
	for _, l := range logs {
		if strings.Contains(l, "resuming (") && !strings.Contains(l, "resuming (0/") {
			resumed = true
		}
	}
	mu.Unlock()
	if !resumed {
		t.Fatalf("restart never logged a non-empty resume; logs: %q", logs)
	}
	td2.shutdown(t)
	wg.Wait()
}

// TestDaemonChaosSoak runs the jobd acceptance scenario under a seeded fault
// schedule — one worker crashes and reconnects, one hangs until the
// heartbeat detector retires it, one needs several dial attempts — and every
// fetched report must still be byte-identical to its solo run.
func TestDaemonChaosSoak(t *testing.T) {
	const seed = 7
	plan := chaos.NewPlan(seed)
	crash, hang, flaky := plan.Crash(), plan.Hang(), plan.FlakyDials()

	cases := []harness.Options{
		{Protocol: "firstvalue", Params: protocol.Params{N: 4},
			MaxDepth: 12, MaxViolations: 3, Prune: true},
		{Protocol: "kset", Params: protocol.Params{N: 4, K: 3},
			MaxDepth: 12, MaxViolations: 3, Prune: true, Symmetry: true},
	}
	solos := make([]string, len(cases))
	for i, opts := range cases {
		solos[i] = reportJSON(t, soloWireReport(t, opts))
	}

	td := startDaemon(t, jobd.Config{MaxActive: len(cases),
		Liveness: dist.Liveness{HeartbeatEvery: 20 * time.Millisecond, HeartbeatMiss: 3}})
	ctx, cancel := context.WithCancel(context.Background())
	dial := func() (net.Conn, error) { return net.Dial("tcp", td.addr) }
	backoff := dist.Backoff{Base: 5 * time.Millisecond, Seed: seed}

	var wg sync.WaitGroup
	// Worker 1: crashes on its first connection, reconnects healthy.
	crashDialer := &chaos.Dialer{Dial: dial, Script: func(i int) chaos.Script {
		if i == 0 {
			return crash
		}
		return chaos.Script{}
	}}
	wg.Add(1)
	go func() {
		defer wg.Done()
		dist.WorkerLoop(ctx, crashDialer.DialConn, dist.WorkConfig{Slots: 2}, harness.Resolve, backoff)
	}()
	// Worker 2: hangs silently; only heartbeats can retire it.
	hungConn := make(chan *chaos.Conn, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := dial()
		if err != nil {
			hungConn <- nil
			return
		}
		hc := chaos.WrapConn(conn, hang)
		hungConn <- hc
		dist.Work(ctx, hc, 1, harness.Resolve)
	}()
	// Worker 3: its first dials flake; DialRetry's backoff absorbs them.
	flakyDialer := &chaos.Dialer{Dial: dial, FailFirst: flaky}
	wg.Add(1)
	go func() {
		defer wg.Done()
		dist.WorkerLoop(ctx, flakyDialer.DialConn, dist.WorkConfig{Slots: 2}, harness.Resolve, backoff)
	}()

	cl, err := jobd.Dial(td.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ids := make([]string, len(cases))
	for i, opts := range cases {
		job, err := harness.CheckJob(opts)
		if err != nil {
			t.Fatal(err)
		}
		ack, err := cl.Submit(job)
		if err != nil || ack.Err != "" {
			t.Fatalf("submit %s: %v / %s", opts.Protocol, err, ack.Err)
		}
		ids[i] = ack.ID
	}
	for i := range cases {
		waitState(t, cl, ids[i], "done")
		rep, err := cl.Fetch(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if got := reportJSON(t, rep.Report); got != solos[i] {
			t.Fatalf("job %s diverged from solo run under chaos seed %d:\nwant %s\ngot  %s",
				ids[i], seed, solos[i], got)
		}
	}
	cancel()
	if hc := <-hungConn; hc != nil {
		hc.Close() // release the goroutine parked in the scripted hang
	}
	td.shutdown(t)
	wg.Wait()
}
