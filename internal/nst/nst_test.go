package nst

import (
	"fmt"
	"testing"

	"revisionist/internal/proto"
	"revisionist/internal/sched"
	"revisionist/internal/shmem"
	"revisionist/internal/spec"
)

func TestAdoptOrKeepSoloPathExists(t *testing.T) {
	conv := NewConverter(AdoptOrKeep{Comp: 0}, 1)
	p := NewProcess(conv, "a")
	d, err := p.SoloDistance()
	if err != nil {
		t.Fatal(err)
	}
	// scan (sees nil) -> write -> scan (sees own) -> final: 3 operations.
	if d != 3 {
		t.Fatalf("solo distance = %d, want 3", d)
	}
}

func TestDeterminizedSoloRunTerminatesWithDecreasingDistance(t *testing.T) {
	conv := NewConverter(AdoptOrKeep{Comp: 0}, 1)
	p := NewProcess(conv, "a")
	mem := make([]proto.Value, 1)
	prev, err := p.SoloDistance()
	if err != nil {
		t.Fatal(err)
	}
	for steps := 0; steps < 100; steps++ {
		op := p.NextOp()
		if op.Kind == proto.OpOutput {
			if op.Val != "a" {
				t.Fatalf("output %v, want a", op.Val)
			}
			return
		}
		switch op.Kind {
		case proto.OpScan:
			view := append([]proto.Value(nil), mem...)
			p.ApplyScan(view)
		case proto.OpUpdate:
			mem[op.Comp] = op.Val
			p.ApplyUpdate()
		}
		d, err := p.SoloDistance()
		if err != nil {
			t.Fatal(err)
		}
		// Theorem 35: along a solo run the shortest solo path length strictly
		// decreases.
		if d >= prev {
			t.Fatalf("solo distance did not decrease: %d -> %d", prev, d)
		}
		prev = d
	}
	t.Fatal("solo run did not terminate")
}

func TestDeterminizedIsDeterministic(t *testing.T) {
	mk := func() *Process {
		return NewProcess(NewConverter(AdoptOrKeep{Comp: 0}, 1), "x")
	}
	p, q := mk(), mk()
	views := [][]proto.Value{{nil}, nil, {"y"}, nil, {"x"}}
	for i := 0; i < len(views); i++ {
		po, qo := p.NextOp(), q.NextOp()
		if po != qo {
			t.Fatalf("step %d: ops diverge: %+v vs %+v", i, po, qo)
		}
		if po.Kind == proto.OpOutput {
			return
		}
		if po.Kind == proto.OpScan {
			p.ApplyScan(views[i])
			q.ApplyScan(views[i])
		} else {
			p.ApplyUpdate()
			q.ApplyUpdate()
		}
		if p.State().Key() != q.State().Key() {
			t.Fatalf("step %d: states diverge: %s vs %s", i, p.State().Key(), q.State().Key())
		}
	}
}

func TestEveryTransitionIsATransitionOfPi(t *testing.T) {
	// Theorem 35: δ′(s, a) ∈ δ(s, a), so every execution of Π′ is an
	// execution of Π. Drive the determinized process with adversarial views
	// and check each taken transition against the nondeterministic Delta.
	machine := AdoptOrKeep{Comp: 0}
	conv := NewConverter(machine, 1)
	p := NewProcess(conv, "a")
	views := [][]proto.Value{{nil}, nil, {"b"}, nil, {"c"}, nil, {"b"}, nil, {"a"}}
	for i := 0; ; i++ {
		op := p.NextOp()
		if op.Kind == proto.OpOutput {
			return
		}
		if i >= len(views) {
			t.Fatal("run too long")
		}
		before := p.State()
		var resp []proto.Value
		if op.Kind == proto.OpScan {
			resp = views[i]
			p.ApplyScan(resp)
		} else {
			p.ApplyUpdate()
		}
		after := p.State()
		legal := false
		for _, s := range machine.Delta(before, resp) {
			if s.Key() == after.Key() {
				legal = true
				break
			}
		}
		if !legal {
			t.Fatalf("step %d: transition %s -> %s not in Delta", i, before.Key(), after.Key())
		}
	}
}

// runNST runs n determinized processes over a shared m-component snapshot.
func runNST(t *testing.T, machine Machine, n, m int, inputs []proto.Value, strat sched.Strategy, maxSteps int) (*proto.RunResult, error) {
	t.Helper()
	procs := make([]proto.Process, n)
	for i := range procs {
		conv := NewConverter(machine, m)
		procs[i] = NewProcess(conv, inputs[i])
	}
	res, _, err := proto.Run(procs, m, nil, strat, sched.WithMaxSteps(maxSteps))
	return res, err
}

func TestDeterminizedProtocolObstructionFree(t *testing.T) {
	// Every process terminates when run solo after an arbitrary contended
	// prefix (the obstruction-freedom of Π′).
	inputs := []proto.Value{"a", "b", "c"}
	for solo := 0; solo < 3; solo++ {
		for _, after := range []int{0, 5, 20} {
			res, err := runNST(t, AdoptOrKeep{Comp: 0}, 3, 1, inputs,
				sched.Solo{PID: solo, After: after, Fallback: sched.RoundRobin{N: 3}}, 100_000)
			if err != nil {
				t.Fatalf("solo=%d after=%d: %v", solo, after, err)
			}
			if !res.Done[solo] {
				t.Fatalf("solo=%d after=%d: solo process did not terminate", solo, after)
			}
			if verr := (spec.Trivial{}).Validate(inputs, res.DoneOutputs()); verr != nil {
				t.Fatalf("solo=%d after=%d: %v", solo, after, verr)
			}
		}
	}
}

func TestDeterminizedProtocolRandomSchedules(t *testing.T) {
	inputs := []proto.Value{"a", "b", "c"}
	for seed := int64(0); seed < 30; seed++ {
		res, err := runNST(t, AdoptOrKeep{Comp: 0}, 3, 1, inputs, sched.NewRandom(seed), 100_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if verr := (spec.Trivial{}).Validate(inputs, res.DoneOutputs()); verr != nil {
			t.Fatalf("seed %d: %v", seed, verr)
		}
	}
}

func TestMultiCoinSoloTermination(t *testing.T) {
	for _, m := range []int{1, 2, 3} {
		conv := NewConverter(MultiCoin{M: m}, m)
		p := NewProcess(conv, 42)
		d, err := p.SoloDistance()
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 || d > 2*m+1 {
			t.Fatalf("m=%d: solo distance %d, want in [0, %d]", m, d, 2*m+1)
		}
	}
}

func TestMultiCoinDeterminizedProtocol(t *testing.T) {
	inputs := []proto.Value{1, 2, 3, 4}
	for seed := int64(0); seed < 20; seed++ {
		res, err := runNST(t, MultiCoin{M: 2}, 4, 2, inputs, sched.NewRandom(seed), 200_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if verr := (spec.Trivial{}).Validate(inputs, res.DoneOutputs()); verr != nil {
			t.Fatalf("seed %d: %v", seed, verr)
		}
	}
	for solo := 0; solo < 4; solo++ {
		res, err := runNST(t, MultiCoin{M: 2}, 4, 2, inputs,
			sched.Solo{PID: solo, After: 10, Fallback: sched.RoundRobin{N: 4}}, 200_000)
		if err != nil {
			t.Fatalf("solo=%d: %v", solo, err)
		}
		if !res.Done[solo] {
			t.Fatalf("solo=%d: not obstruction-free", solo)
		}
	}
}

func TestMultiCoinClonesIndependent(t *testing.T) {
	conv := NewConverter(MultiCoin{M: 2}, 2)
	p := NewProcess(conv, 1)
	q := p.Clone().(*Process)
	p.ApplyScan(make([]proto.Value, 2))
	if p.State().Key() == q.State().Key() {
		t.Fatal("clone advanced with original")
	}
}

func TestTaggedRegistersABAFreedom(t *testing.T) {
	// ABA-freedom (§5.3): in any execution there is no i < j < k with the
	// register holding the same tagged value at configurations i and k but a
	// different one at j. Equivalently, a sequential reader never observes
	// the pattern A, then B != A, then A again — even when writers keep
	// rewriting the same logical value.
	for seed := int64(0); seed < 20; seed++ {
		runner := sched.NewRunner(3, sched.NewRandom(seed), sched.WithMaxSteps(1<<20))
		tr := NewTaggedRegisters("R", runner, 1, 3)
		var obs []tagged
		_, err := runner.Run(func(pid int) {
			if pid == 2 {
				for i := 0; i < 12; i++ {
					obs = append(obs, tr.regs[0].Read(pid).(tagged))
				}
				return
			}
			for i := 0; i < 4; i++ {
				tr.Write(pid, 0, "same-value")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		lastAt := map[tagged]int{}
		run := 0 // index of the start of the current equal-run
		for i, tg := range obs {
			if i > 0 && tg != obs[i-1] {
				run = i
			}
			if at, ok := lastAt[tg]; ok && at < run-1 {
				// tg was seen, something else intervened, tg came back.
				t.Fatalf("seed %d: ABA pattern at read %d: %+v reappeared", seed, i, tg)
			}
			lastAt[tg] = i
		}
	}
}

func TestTaggedRegistersScan(t *testing.T) {
	tr := NewTaggedRegisters("R", shmem.Free{}, 3, 2)
	tr.Write(0, 0, "a")
	tr.Write(1, 2, "b")
	view := tr.Scan(0)
	want := []shmem.Value{"a", nil, "b"}
	for j := range want {
		if view[j] != want[j] {
			t.Fatalf("view = %v, want %v", view, want)
		}
	}
}

func TestTaggedRegistersScanUnderContention(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		runner := sched.NewRunner(3, sched.NewRandom(seed), sched.WithMaxSteps(1<<20))
		tr := NewTaggedRegisters("R", runner, 2, 3)
		var views [][]shmem.Value
		_, err := runner.Run(func(pid int) {
			if pid == 2 {
				for i := 0; i < 3; i++ {
					views = append(views, tr.Scan(pid))
				}
				return
			}
			for i := 0; i < 3; i++ {
				tr.Write(pid, pid%2, fmt.Sprintf("p%d-%d", pid, i))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(views) != 3 {
			t.Fatalf("scanner returned %d views", len(views))
		}
	}
}

func TestDeterminizedRunsOverTaggedRegisters(t *testing.T) {
	// Corollary 36 end to end: the determinized protocol Π′ runs over the
	// ABA-free register implementation of the m-component object.
	inputs := []proto.Value{"a", "b"}
	for seed := int64(0); seed < 10; seed++ {
		runner := sched.NewRunner(2, sched.NewRandom(seed), sched.WithMaxSteps(1<<20))
		tr := NewTaggedRegisters("R", runner, 1, 2)
		procs := make([]proto.Process, 2)
		for i := range procs {
			procs[i] = NewProcess(NewConverter(AdoptOrKeep{Comp: 0}, 1), inputs[i])
		}
		res, _, err := proto.RunOnSnapshot(procs, tr, runner)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if verr := (spec.Trivial{}).Validate(inputs, res.DoneOutputs()); verr != nil {
			t.Fatalf("seed %d: %v", seed, verr)
		}
	}
}

func TestMaxBidOverMaxRegister(t *testing.T) {
	// Theorem 35 over a non-snapshot m-component object (§5.2): determinize
	// MaxBid with max-register semantics and run it over shmem.MaxSnapshot.
	conv := NewConverterFor(MaxBid{}, 1, MaxSemantics{Less: shmem.IntLess})
	p := NewProcess(conv, 5)
	d, err := p.SoloDistance()
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Fatalf("solo distance = %d, want 3 (writemax, scan, decide)", d)
	}
	for seed := int64(0); seed < 20; seed++ {
		runner := sched.NewRunner(3, sched.NewRandom(seed), sched.WithMaxSteps(1<<20))
		snap := shmem.NewMaxSnapshot("X", runner, 1, shmem.IntLess)
		procs := make([]proto.Process, 3)
		for i := range procs {
			procs[i] = NewProcess(NewConverterFor(MaxBid{}, 1, MaxSemantics{Less: shmem.IntLess}), 3+i)
		}
		res, _, err := proto.RunOnSnapshot(procs, snap, runner)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Outputs adopt the register value, which only grows: every output is
		// an int >= the smallest bid.
		for pid, done := range res.Done {
			if !done {
				continue
			}
			if v, ok := res.Outputs[pid].(int); !ok || v < 3 {
				t.Fatalf("seed %d: output %v", seed, res.Outputs[pid])
			}
		}
	}
}

func TestMaxBidSoloDistanceDecreases(t *testing.T) {
	conv := NewConverterFor(MaxBid{}, 1, MaxSemantics{Less: shmem.IntLess})
	p := NewProcess(conv, 1)
	mem := []proto.Value{nil}
	prev, err := p.SoloDistance()
	if err != nil {
		t.Fatal(err)
	}
	for steps := 0; steps < 50; steps++ {
		op := p.NextOp()
		if op.Kind == proto.OpOutput {
			return
		}
		if op.Kind == proto.OpScan {
			p.ApplyScan(append([]proto.Value(nil), mem...))
		} else {
			// Apply max-register semantics to the shared memory.
			if mem[op.Comp] == nil || shmem.IntLess(mem[op.Comp], op.Val) {
				mem[op.Comp] = op.Val
			}
			p.ApplyUpdate()
		}
		d, err := p.SoloDistance()
		if err != nil {
			t.Fatal(err)
		}
		if d >= prev {
			t.Fatalf("solo distance did not decrease: %d -> %d", prev, d)
		}
		prev = d
	}
	t.Fatal("did not terminate")
}

func TestMaxSnapshotMonotone(t *testing.T) {
	// The ABA-freedom §5.3 notes for max registers: component values never
	// regress.
	snap := shmem.NewMaxSnapshot("X", shmem.Free{}, 2, shmem.IntLess)
	snap.Update(0, 0, 5)
	snap.Update(1, 0, 3) // lower writemax is a no-op
	if got := snap.Scan(0)[0]; got != 5 {
		t.Fatalf("component regressed to %v", got)
	}
	snap.Update(1, 0, 9)
	if got := snap.Scan(0)[0]; got != 9 {
		t.Fatalf("component = %v, want 9", got)
	}
}
