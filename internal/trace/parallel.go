// Parallel schedule search: the worker-pool Explore path. Exhaustive
// exploration is embarrassingly parallel over independent fresh-engine runs,
// so the DFS prefix tree is split into disjoint subtrees — a coordinator
// expands the first few decision levels into a frontier of prefixes in
// canonical DFS order — and a pool of workers drains them, each running the
// same per-subtree DFS loop as the sequential explorer. Per-subtree results
// carry enough per-run detail (violation ordinals, truncation bits) that the
// merge can re-cut the search at exactly the run where the sequential loop
// would have stopped, so the final report is byte-identical to the
// sequential one for any worker count: violations in canonical schedule
// order, Runs/Truncated/Exhausted exact, MaxRuns and MaxViolations enforced
// through an atomic budget handoff between subtrees.
package trace

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"revisionist/internal/sched"
)

// ResolveWorkers maps a Workers option value to a concrete pool size:
// 0 (the default) selects GOMAXPROCS, everything below 1 is clamped to 1.
func ResolveWorkers(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return max(n, 1)
}

// RunOnPool runs fn(0..n-1) on a pool of workers claiming indices from a
// shared counter; with one worker it degenerates to a plain loop. It is the
// shared fan-out shape of every parallel search in the repository — callers
// keep results deterministic by writing fn's outcome to a per-index slot and
// merging in index order afterwards.
func RunOnPool(workers, n int, fn func(i int)) {
	workers = min(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// frontierTarget is how many subtrees the coordinator aims to expand per
// worker: enough slack that an uneven subtree cannot idle the pool, small
// enough that probe runs and merge state stay negligible.
const frontierTarget = 4

// maxFrontier caps the frontier size regardless of worker count, which also
// caps the per-run cost of the budget lower bound (a prefix sum over the
// subtree run counters).
const maxFrontier = 512

// expandFrontier splits the DFS tree into disjoint subtree-root prefixes, in
// canonical DFS order, by probing: one run with prefix p (first-enabled
// beyond it) reveals the enabled set at decision level len(p), whose members
// are p's children. Expansion proceeds level by level until the frontier
// reaches target, probing is no longer making progress, or the probe budget
// is spent. Probe runs are discarded — each one is re-executed as its
// subtree's first run — so probe errors are deliberately ignored here: the
// owning worker hits the same error at its canonical position.
func expandFrontier(nprocs int, factory Factory, opts ExploreOpts, target int) [][]int {
	frontier := [][]int{{}}
	strat := &recStrategy{maxDepth: opts.MaxDepth}
	probes := 0
	probeBudget := 8 * target
	for depth := 0; depth < opts.MaxDepth && len(frontier) < target && probes < probeBudget; depth++ {
		next := make([][]int, 0, len(frontier))
		for _, p := range frontier {
			if len(p) < depth || probes >= probeBudget {
				next = append(next, p) // already a leaf (or out of probes)
				continue
			}
			probes++
			strat.reset(p)
			eng, err := sched.NewEngine(opts.Engine, nprocs, strat)
			if err != nil {
				return [][]int{{}} // invalid engine: let the caller's first run surface it
			}
			sys := factory(eng)
			if sys.Machines != nil {
				_, err = eng.RunMachines(sys.Machines)
			} else {
				_, err = eng.Run(sys.Body)
			}
			if err != nil || strat.diverged != nil || len(strat.picks) <= depth {
				// The run failed (or diverged), or ended without a decision at
				// this level: the prefix is a complete (single-run) subtree.
				next = append(next, p)
				continue
			}
			for _, c := range strat.enabledAt(depth) {
				child := make([]int, depth+1)
				copy(child, p)
				child[depth] = c
				next = append(next, child)
			}
		}
		frontier = next
	}
	return frontier
}

// subViolation is one violation found inside a subtree, positioned by its
// run ordinal so the merge can apply MaxViolations at the exact run where
// the sequential loop would have stopped.
type subViolation struct {
	ord      int // run ordinal within the subtree
	truncCum int // truncated runs among ordinals [0, ord], inclusive
	// prunedCum and distinctCum position the stateful explorer's counters at
	// this violation: cut runs among ordinals [0, ord] (the violating run is
	// never cut) and states closed before the violating run's backtrack (a
	// violation cutoff stops the loop before closures).
	prunedCum   int
	distinctCum int
	v           Violation
}

// subtreeResult is one worker's report for one subtree: aggregate counts
// plus the per-run detail (violation ordinals, truncation bits, the failing
// run) the deterministic merge needs to re-cut the search exactly.
type subtreeResult struct {
	runs      int
	truncated int
	exhausted bool // the subtree's whole space was covered
	viols     []subViolation

	// pruned and distinct are the stateful explorer's counters (zero for the
	// plain schedule enumerator).
	pruned   int
	distinct int

	// truncBits and pruneBits record, per run ordinal, whether the run was
	// truncated or cut; distCums[i] is the closed-state count through run i's
	// backtrack. All three are only tracked under a MaxRuns budget, where the
	// merge may need the counters of an arbitrary run prefix.
	truncBits  []uint64
	pruneBits  []uint64
	distCums   []int32
	trackTrunc bool

	// runErr is a failed run (engine error), wrapped exactly as the
	// sequential loop wraps it; errOrd positions it, errTruncCum is the
	// truncated count through it (the failing run counts its truncation), and
	// errPrunedCum/errDistinctCum position the stateful counters like a
	// violation's.
	runErr         error
	errOrd         int
	errTruncCum    int
	errPrunedCum   int
	errDistinctCum int

	// stopped marks a subtree abandoned by ExploreOpts.Interrupted: the merge
	// credits whatever it completed and returns ErrInterrupted.
	stopped bool
}

// setBit marks run ordinal ord in a per-run bitset.
func setBit(bits *[]uint64, ord int) {
	w := ord >> 6
	for len(*bits) <= w {
		*bits = append(*bits, 0)
	}
	(*bits)[w] |= 1 << (ord & 63)
}

// countBits returns the number of marked ordinals in [0, n).
func countBits(bs []uint64, n int) int {
	c := 0
	for w := 0; w*64 < n; w++ {
		var word uint64
		if w < len(bs) {
			word = bs[w]
		}
		if (w+1)*64 > n {
			word &= 1<<(uint(n)&63) - 1
		}
		c += bits.OnesCount64(word)
	}
	return c
}

func (sr *subtreeResult) setTruncBit(ord int) {
	if sr.trackTrunc {
		setBit(&sr.truncBits, ord)
	}
}

func (sr *subtreeResult) setPruneBit(ord int) {
	if sr.trackTrunc {
		setBit(&sr.pruneBits, ord)
	}
}

// recordDistCum records the closed-state count after the latest run's
// backtrack; the stateful loop calls it once per run, in ordinal order.
func (sr *subtreeResult) recordDistCum() {
	if sr.trackTrunc {
		sr.distCums = append(sr.distCums, int32(sr.distinct))
	}
}

// truncCount returns the number of truncated runs among ordinals [0, n).
func (sr *subtreeResult) truncCount(n int) int { return countBits(sr.truncBits, n) }

// exploreShared is the coordination state of one parallel exploration.
type exploreShared struct {
	frontier [][]int
	next     atomic.Int64 // next unclaimed subtree index
	// counters[i] counts runs started in subtree i. A prefix sum over j < i
	// is a monotone lower bound on the runs the merge will credit before
	// subtree i — the atomic budget handoff: worker i stops as soon as that
	// bound plus its own runs reaches MaxRuns, which is provably at or past
	// the sequential cutoff, and the merge trims the overshoot.
	counters []atomic.Int64
	// stopAfter is the smallest subtree index known to end the search (a
	// MaxRuns, MaxViolations or run-error cutoff); subtrees beyond it are
	// skipped or abandoned, and the merge never reads them.
	stopAfter atomic.Int64
	maxRuns   int
	maxViol   int
	// base offsets every budget lower bound: runs already credited before the
	// first frontier entry. Zero for a whole-tree exploration; a distributed
	// worker running one leased subtree gets the coordinator's frozen base.
	base int
}

func (sh *exploreShared) cutAt(i int) {
	for {
		cur := sh.stopAfter.Load()
		if cur <= int64(i) || sh.stopAfter.CompareAndSwap(cur, int64(i)) {
			return
		}
	}
}

// baseLower returns the current lower bound on runs preceding subtree i in
// canonical order.
func (sh *exploreShared) baseLower(i int) int {
	sum := sh.base
	for j := 0; j < i; j++ {
		sum += int(sh.counters[j].Load())
	}
	return sum
}

// exploreSubtree runs the sequential DFS loop restricted to the subtree
// rooted at frontier[i] — backtracking never unwinds above the root prefix —
// recording the per-run detail the merge needs. The loop body mirrors
// exploreSequential step for step (budget check before the run, truncation
// and error accounting after it, violation check, backtrack), with the
// global counters replaced by their atomic lower bounds.
func (sh *exploreShared) exploreSubtree(i, nprocs int, factory Factory, opts ExploreOpts) *subtreeResult {
	root := sh.frontier[i]
	sr := &subtreeResult{errOrd: -1, trackTrunc: sh.maxRuns > 0}
	strat := &recStrategy{maxDepth: opts.MaxDepth}
	prefix := root
	if sh.maxRuns > 0 && sh.baseLower(i) >= sh.maxRuns {
		sh.cutAt(i)
		return sr // earlier subtrees alone exhaust the budget
	}
	for {
		if int64(i) > sh.stopAfter.Load() {
			return sr // an earlier subtree already ends the search
		}
		if opts.Interrupted != nil && opts.Interrupted() {
			sr.stopped = true
			sh.cutAt(i)
			return sr
		}
		sh.counters[i].Add(1)
		strat.reset(prefix)
		eng, err := sched.NewEngine(opts.Engine, nprocs, strat)
		if err != nil {
			// Unreachable: the engine kind was validated before the pool
			// started; surface it like a failed first run regardless.
			sr.runErr, sr.errOrd, sr.errTruncCum = err, sr.runs, sr.truncated
			sr.runs++
			sh.cutAt(i)
			return sr
		}
		sys := factory(eng)
		var res *sched.Result
		if sys.Machines != nil {
			res, err = eng.RunMachines(sys.Machines)
		} else {
			res, err = eng.Run(sys.Body)
		}
		if err == nil && strat.diverged != nil {
			err = strat.diverged
		}
		ord := sr.runs
		sr.runs++
		if strat.trunc {
			sr.truncated++
			sr.setTruncBit(ord)
		}
		opts.Obs.RunDone(strat.trunc, false, false)
		if err != nil {
			sr.runErr = fmt.Errorf("trace: run failed on schedule %v: %w", strat.picks, err)
			sr.errOrd, sr.errTruncCum = ord, sr.truncated
			sh.cutAt(i)
			return sr
		}
		if cerr := sys.Check(res); cerr != nil {
			sch := make([]int, len(strat.picks))
			copy(sch, strat.picks)
			sr.viols = append(sr.viols, subViolation{ord: ord, truncCum: sr.truncated,
				v: Violation{Schedule: sch, Err: cerr}})
			if len(sr.viols) >= sh.maxViol {
				sh.cutAt(i)
				return sr
			}
		}
		next := strat.backtrack(len(root))
		if next == nil {
			sr.exhausted = true
			return sr
		}
		prefix = next
		// The sequential loop checks the budget at the loop top — after the
		// previous run's backtrack — so the check sits here too: a worker
		// that stops on budget has already learned whether its subtree was
		// exhausted, which the merge needs for the exact Exhausted flag.
		if sh.maxRuns > 0 && sh.baseLower(i)+sr.runs >= sh.maxRuns {
			sh.cutAt(i)
			return sr
		}
	}
}

// exploreParallel shards the DFS tree across a worker pool and merges the
// per-subtree results back into the canonical sequential report.
func exploreParallel(nprocs int, factory Factory, opts ExploreOpts, workers int) (*ExploreReport, error) {
	// Validate the engine kind once, before the pool exists, so workers
	// cannot fail on construction.
	if _, err := sched.NewEngine(opts.Engine, nprocs, sched.Lowest{}); err != nil {
		return nil, err
	}
	target := min(frontierTarget*workers, maxFrontier)
	if opts.MaxRuns > 0 {
		target = min(target, opts.MaxRuns)
	}
	frontier := expandFrontier(nprocs, factory, opts, max(target, 1))
	if len(frontier) <= 1 {
		return exploreSequential(nprocs, factory, opts)
	}
	maxViol := opts.MaxViolations
	if maxViol <= 0 {
		maxViol = 1
	}
	sh := &exploreShared{
		frontier: frontier,
		counters: make([]atomic.Int64, len(frontier)),
		maxRuns:  opts.MaxRuns,
		maxViol:  maxViol,
	}
	sh.stopAfter.Store(math.MaxInt64)
	results := make([]*subtreeResult, len(frontier))
	var wg sync.WaitGroup
	for w := 0; w < min(workers, len(frontier)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(sh.next.Add(1) - 1)
				if i >= len(sh.frontier) || int64(i) > sh.stopAfter.Load() {
					return
				}
				results[i] = sh.exploreSubtree(i, nprocs, factory, opts)
			}
		}()
	}
	wg.Wait()
	return mergeSubtrees(frontier, results, opts.MaxRuns, maxViol, false)
}

// mergeSubtrees folds per-subtree results, in canonical DFS order, into the
// report the sequential loop would have produced: it credits each subtree's
// runs against the MaxRuns budget, re-applies the MaxViolations and
// run-error cutoffs at their exact run ordinals, and trims the speculative
// overshoot past the first cutoff. With interrupted set (the caller's
// context was cancelled mid-search), missing or partial subtrees terminate
// the merge with the report so far and ErrInterrupted instead of being
// internal errors.
func mergeSubtrees(frontier [][]int, results []*subtreeResult, maxRuns, maxViol int, interrupted bool) (*ExploreReport, error) {
	rep := &ExploreReport{}
	for i, sr := range results {
		budgetRem := math.MaxInt
		if maxRuns > 0 {
			budgetRem = maxRuns - rep.Runs
			if budgetRem <= 0 {
				return rep, nil // sequential loop-top stop: budget spent
			}
		}
		if sr == nil {
			if interrupted {
				return rep, ErrInterrupted
			}
			return nil, fmt.Errorf("trace: internal: subtree %v was never explored", frontier[i])
		}
		// A subtree abandoned by ExploreOpts.Interrupted: credit what it
		// completed and stop — the partial report is best-effort.
		if sr.stopped {
			credit(rep, sr)
			return rep, ErrInterrupted
		}
		violRem := maxViol - len(rep.Violations)
		// MaxViolations cutoff inside this subtree? (Violation ordinals
		// always precede a run error's, since the worker stops on error.)
		if len(sr.viols) >= violRem && sr.viols[violRem-1].ord+1 <= budgetRem {
			v := sr.viols[violRem-1]
			rep.Runs += v.ord + 1
			rep.Truncated += v.truncCum
			rep.Pruned += v.prunedCum
			rep.Distinct += v.distinctCum
			for _, sv := range sr.viols[:violRem] {
				rep.Violations = append(rep.Violations, sv.v)
			}
			return rep, nil
		}
		// Run-error cutoff?
		if sr.errOrd >= 0 && sr.errOrd+1 <= budgetRem {
			rep.Runs += sr.errOrd + 1
			rep.Truncated += sr.errTruncCum
			rep.Pruned += sr.errPrunedCum
			rep.Distinct += sr.errDistinctCum
			for _, sv := range sr.viols {
				rep.Violations = append(rep.Violations, sv.v)
			}
			return rep, sr.runErr
		}
		// MaxRuns cutoff inside this subtree? (The boundary case — budget
		// spent exactly at the subtree's recorded runs without exhausting it
		// — is the sequential loop stopping at its loop-top check with more
		// prefixes left to explore.)
		if budgetRem < sr.runs || (budgetRem == sr.runs && !sr.exhausted) {
			rep.Runs += budgetRem
			rep.Truncated += sr.truncCount(budgetRem)
			rep.Pruned += countBits(sr.pruneBits, budgetRem)
			if len(sr.distCums) >= budgetRem && budgetRem > 0 {
				rep.Distinct += int(sr.distCums[budgetRem-1])
			}
			for _, sv := range sr.viols {
				if sv.ord < budgetRem {
					rep.Violations = append(rep.Violations, sv.v)
				}
			}
			return rep, nil
		}
		// No cutoff here: credit the whole subtree.
		if !sr.exhausted {
			if interrupted {
				credit(rep, sr)
				return rep, ErrInterrupted
			}
			return nil, fmt.Errorf("trace: internal: partial subtree %v survived merging", frontier[i])
		}
		credit(rep, sr)
	}
	rep.Exhausted = true
	return rep, nil
}

// credit adds one whole subtree result — counters and violations — to the
// merged report.
func credit(rep *ExploreReport, sr *subtreeResult) {
	rep.Runs += sr.runs
	rep.Truncated += sr.truncated
	rep.Pruned += sr.pruned
	rep.Distinct += sr.distinct
	for _, sv := range sr.viols {
		rep.Violations = append(rep.Violations, sv.v)
	}
}
