// Package algorithms implements the obstruction-free protocols the paper's
// experiments measure against: shared-memory Paxos consensus (n components,
// matching the tight lower bound of Corollary 33), k-set agreement with
// n−k+1 components, a lane-partitioned protocol with n−k+x components, a
// 2-process wait-free ε-approximate agreement protocol, and deliberately
// space-starved protocols used by the reduction-falsification experiments.
//
// All protocols are proto.Process state machines that alternate scan and
// update per the paper's Assumption 1.
package algorithms

import (
	"fmt"

	"revisionist/internal/proto"
)

// PaxosReg is the value a Paxos process keeps in its own component:
// the round-based register of the obstruction-free Alpha/consensus
// construction (Guerraoui & Raynal). LRE is the last round entered (phase 1),
// LRWW the last round with a value write (phase 2), Val the value written.
type PaxosReg struct {
	LRE  int
	LRWW int
	Val  proto.Value
}

// String renders the register for traces.
func (r PaxosReg) String() string {
	return fmt.Sprintf("{lre:%d lrww:%d val:%v}", r.LRE, r.LRWW, r.Val)
}

type paxosPhase int

const (
	paxInit   paxosPhase = iota // poised initial scan
	paxWrite1                   // poised update: LRE := r
	paxCheck1                   // poised scan: phase-1 check
	paxWrite2                   // poised update: (r, r, val)
	paxCheck2                   // poised scan: phase-2 check
	paxDone
)

// Paxos is obstruction-free consensus for a group of processes, each owning
// one component of M (single-writer discipline over the multi-writer
// snapshot). A group of g processes uses exactly g components, so n-process
// consensus uses n components — tight by Corollary 33.
//
// Round structure (rounds are unique per process: idx+1, idx+1+g, ...):
//
//	phase 1: write LRE := r to own component; scan; abort if any group
//	         component has LRE > r or LRWW > r; otherwise adopt the value of
//	         the component with the largest LRWW (own input if none).
//	phase 2: write (r, r, val); scan; abort if any group component has
//	         LRE > r or LRWW > r; otherwise decide val.
//
// Safety is the standard Paxos argument with "read all" as the quorum;
// obstruction-freedom holds because a solo process eventually runs a round
// no one intersects.
type Paxos struct {
	idx   int   // position within the group (determines ballots)
	g     int   // group size (ballot spacing)
	comp  int   // own component index in M
	group []int // all component indices of the group (including comp)
	input proto.Value

	r     int // current round (ballot)
	val   proto.Value
	myReg PaxosReg

	phase paxosPhase
	out   proto.Value
}

var _ proto.Process = (*Paxos)(nil)

// NewPaxos returns the group member at position idx (0-based) of a Paxos
// group whose members own the components in group (member idx owns
// group[idx]).
func NewPaxos(idx int, group []int, input proto.Value) *Paxos {
	g := make([]int, len(group))
	copy(g, group)
	return &Paxos{
		idx:   idx,
		g:     len(group),
		comp:  group[idx],
		group: g,
		input: input,
		r:     idx + 1,
		phase: paxInit,
	}
}

// NextOp implements proto.Process.
func (p *Paxos) NextOp() proto.Op {
	switch p.phase {
	case paxInit, paxCheck1, paxCheck2:
		return proto.Op{Kind: proto.OpScan}
	case paxWrite1:
		return proto.Op{Kind: proto.OpUpdate, Comp: p.comp, Val: PaxosReg{LRE: p.r, LRWW: p.myReg.LRWW, Val: p.myReg.Val}}
	case paxWrite2:
		return proto.Op{Kind: proto.OpUpdate, Comp: p.comp, Val: PaxosReg{LRE: p.r, LRWW: p.r, Val: p.val}}
	case paxDone:
		return proto.Op{Kind: proto.OpOutput, Val: p.out}
	default:
		panic(fmt.Sprintf("algorithms: paxos in invalid phase %d", p.phase))
	}
}

// ApplyScan implements proto.Process.
func (p *Paxos) ApplyScan(view []proto.Value) {
	switch p.phase {
	case paxInit:
		p.phase = paxWrite1
	case paxCheck1:
		if p.conflict(view, p.r) {
			p.retry()
			return
		}
		// Adopt the value of the largest phase-2 write, or keep the input.
		best := 0
		p.val = p.input
		for _, c := range p.group {
			reg := asPaxosReg(view[c])
			if reg.LRWW > best {
				best = reg.LRWW
				p.val = reg.Val
			}
		}
		p.phase = paxWrite2
	case paxCheck2:
		if p.conflict(view, p.r) {
			p.retry()
			return
		}
		p.out = p.val
		p.phase = paxDone
	default:
		panic(fmt.Sprintf("algorithms: paxos scan applied in phase %d", p.phase))
	}
}

// ApplyUpdate implements proto.Process.
func (p *Paxos) ApplyUpdate() {
	switch p.phase {
	case paxWrite1:
		p.myReg = PaxosReg{LRE: p.r, LRWW: p.myReg.LRWW, Val: p.myReg.Val}
		p.phase = paxCheck1
	case paxWrite2:
		p.myReg = PaxosReg{LRE: p.r, LRWW: p.r, Val: p.val}
		p.phase = paxCheck2
	default:
		panic(fmt.Sprintf("algorithms: paxos update applied in phase %d", p.phase))
	}
}

// Clone implements proto.Process.
func (p *Paxos) Clone() proto.Process {
	q := *p
	q.group = make([]int, len(p.group))
	copy(q.group, p.group)
	return &q
}

// conflict reports whether any group component has entered or written a round
// beyond r.
func (p *Paxos) conflict(view []proto.Value, r int) bool {
	for _, c := range p.group {
		reg := asPaxosReg(view[c])
		if reg.LRE > r || reg.LRWW > r {
			return true
		}
	}
	return false
}

func (p *Paxos) retry() {
	p.r += p.g
	p.phase = paxWrite1
}

func asPaxosReg(v proto.Value) PaxosReg {
	if v == nil {
		return PaxosReg{}
	}
	return v.(PaxosReg)
}
