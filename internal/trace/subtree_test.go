package trace

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// driveSubtrees replays the distributed coordinator's protocol in-process
// and single-threaded: plan, lease every subtree in canonical waves against
// a table frozen at wave starts, merge. It is the reference composition the
// exported hooks must satisfy without any transport in the way.
func driveSubtrees(t *testing.T, nprocs int, factory Factory, opts ExploreOpts) *ExploreReport {
	t.Helper()
	frontier, width, err := SubtreePlan(nprocs, factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	maxViol := opts.MaxViolations
	if maxViol <= 0 {
		maxViol = 1
	}
	outcomes := make([]*SubtreeOutcome, len(frontier))
	table := map[uint64]int{}
	frozen := func(fp uint64) (int, bool) { rem, ok := table[fp]; return rem, ok }
	done := 0
	stop := len(frontier)
wave:
	for lo := 0; lo < len(frontier); lo += width {
		hi := min(lo+width, len(frontier))
		for i := lo; i < hi && i <= stop; i++ {
			o, err := RunSubtree(nprocs, factory, opts, frontier[i], done, frozen)
			if err != nil {
				t.Fatal(err)
			}
			outcomes[i] = o
			if i < stop && o.Cut(maxViol) {
				stop = i
			}
		}
		if stop < hi {
			break wave // cutoff inside this wave: merge now, publish nothing
		}
		for i := lo; i < hi; i++ {
			done += outcomes[i].Runs
			for _, e := range outcomes[i].Closures {
				if cur, ok := table[e.Fp]; !ok || e.Rem > cur {
					table[e.Fp] = e.Rem
				}
			}
		}
	}
	rep, err := MergeOutcomes(frontier, outcomes, opts, false)
	if err != nil {
		if rep == nil {
			t.Fatal(err)
		}
		// a run-error report is still comparable; surface unexpected kinds
		if errors.Is(err, ErrInterrupted) {
			t.Fatal(err)
		}
	}
	if opts.Prune && rep.Exhausted {
		rep.Distinct = len(table)
	}
	return rep
}

// TestSubtreeHooksMatchExplore drives the exported lease/run/merge hooks the
// way a coordinator does and requires the exact Explore report — pruned and
// plain, exhaustive and budget-cut.
func TestSubtreeHooksMatchExplore(t *testing.T) {
	for _, c := range []struct {
		name    string
		nprocs  int
		factory Factory
		opts    ExploreOpts
	}{
		{"firstvalue-3-plain", 3, firstValueFactory(3), ExploreOpts{MaxDepth: 12}},
		{"firstvalue-3-pruned", 3, firstValueFactory(3), ExploreOpts{MaxDepth: 12, Prune: true, Checkpoint: true}},
		{"consensus-2-viol", 2, consensusAgreeFactory(2), ExploreOpts{MaxDepth: 12, MaxViolations: 3}},
		{"consensus-2-budget", 2, consensusAgreeFactory(2), ExploreOpts{MaxDepth: 16, MaxRuns: 900}},
		{"consensus-2-pruned-budget", 2, consensusAgreeFactory(2), ExploreOpts{MaxDepth: 16, MaxRuns: 900, Prune: true, Checkpoint: true}},
	} {
		t.Run(c.name, func(t *testing.T) {
			want, err := Explore(c.nprocs, c.factory, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			got := driveSubtrees(t, c.nprocs, c.factory, c.opts)
			if want.Runs != got.Runs || want.Truncated != got.Truncated ||
				want.Exhausted != got.Exhausted || want.Pruned != got.Pruned ||
				want.Distinct != got.Distinct || len(want.Violations) != len(got.Violations) {
				t.Fatalf("hook-driven report diverges:\nwant %+v\ngot  %+v", want, got)
			}
			for i := range want.Violations {
				if fmt.Sprint(want.Violations[i].Schedule) != fmt.Sprint(got.Violations[i].Schedule) ||
					want.Violations[i].Err.Error() != got.Violations[i].Err.Error() {
					t.Fatalf("violation %d diverges", i)
				}
			}
		})
	}
}

// TestExploreInterrupted checks the graceful-interruption contract on every
// explorer path: once Interrupted flips, Explore stops and returns the
// partial report with ErrInterrupted instead of running to exhaustion.
func TestExploreInterrupted(t *testing.T) {
	for _, c := range []struct {
		name string
		opts ExploreOpts
	}{
		{"sequential", ExploreOpts{MaxDepth: 20, Workers: 1}},
		{"parallel", ExploreOpts{MaxDepth: 20, Workers: 4}},
		{"pruned", ExploreOpts{MaxDepth: 20, Workers: 4, Prune: true, Checkpoint: true}},
	} {
		t.Run(c.name, func(t *testing.T) {
			full, err := Explore(4, firstValueFactory(4), ExploreOpts{MaxDepth: 20, Workers: 1, Prune: c.opts.Prune, Checkpoint: c.opts.Checkpoint})
			if err != nil {
				t.Fatal(err)
			}
			var polls atomic.Int64
			opts := c.opts
			opts.Interrupted = func() bool { return polls.Add(1) > 40 }
			rep, err := Explore(4, firstValueFactory(4), opts)
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("want ErrInterrupted, got %v", err)
			}
			if rep == nil {
				t.Fatal("no partial report")
			}
			if rep.Exhausted || rep.Runs == 0 || rep.Runs >= full.Runs {
				t.Fatalf("implausible partial report %+v (full search: %d runs)", rep, full.Runs)
			}
		})
	}
}

// TestExploreInterruptedImmediately pins the degenerate case: a search
// cancelled before its first schedule still reports cleanly.
func TestExploreInterruptedImmediately(t *testing.T) {
	rep, err := Explore(3, firstValueFactory(3), ExploreOpts{
		MaxDepth: 10, Workers: 1, Interrupted: func() bool { return true },
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if rep == nil || rep.Runs != 0 || rep.Exhausted {
		t.Fatalf("bad empty partial report %+v", rep)
	}
}
