package algorithms

import (
	"fmt"
	"testing"
	"testing/quick"

	"revisionist/internal/bounds"
	"revisionist/internal/proto"
	"revisionist/internal/sched"
	"revisionist/internal/shmem"
	"revisionist/internal/spec"
	"revisionist/internal/trace"
)

func TestAA2ParamValidation(t *testing.T) {
	if _, err := NewAA2(2, 0, 0.5); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := NewAA2(0, 0, 1.5); err == nil {
		t.Error("eps >= 1 accepted")
	}
	if _, err := NewAA2(0, 0, 0); err == nil {
		t.Error("eps = 0 accepted")
	}
	if _, err := NewAA2(0, 2, 0.5); err == nil {
		t.Error("input outside [0,1] accepted")
	}
}

func TestAA2WaitFreeAndCorrect(t *testing.T) {
	for _, eps := range []float64{0.5, 0.25, 0.1, 0.01, 0.001} {
		for seed := int64(0); seed < 40; seed++ {
			inputs := [2]float64{0, 1}
			procs, m, err := NewApproxAgreement2(inputs, eps)
			if err != nil {
				t.Fatal(err)
			}
			res, _, rerr := proto.Run(procs, m, nil, sched.NewRandom(seed), sched.WithMaxSteps(100_000))
			if rerr != nil {
				t.Fatalf("eps=%g seed=%d: %v", eps, seed, rerr)
			}
			for pid, d := range res.Done {
				if !d {
					t.Fatalf("eps=%g seed=%d: process %d not done (protocol must be wait-free)", eps, seed, pid)
				}
			}
			task := spec.ApproxAgreement{Eps: eps}
			if verr := task.Validate([]spec.Value{0.0, 1.0}, res.DoneOutputs()); verr != nil {
				t.Fatalf("eps=%g seed=%d: %v", eps, seed, verr)
			}
		}
	}
}

func TestAA2ExhaustiveSchedules(t *testing.T) {
	// Every schedule of the eps = 0.25 instance (2 rounds, 5 ops each): both
	// processes always terminate with outputs within eps and inside [0, 1].
	const eps = 0.25
	factory := func(runner sched.Stepper) trace.System {
		procs, m, err := NewApproxAgreement2([2]float64{0, 1}, eps)
		if err != nil {
			panic(err)
		}
		res := proto.NewRunResult(2)
		snap := shmem.NewMWSnapshot("M", runner, m, nil)
		return trace.System{
			Body: proto.Body(procs, snap, res),
			Check: func(*sched.Result) error {
				outs := res.DoneOutputs()
				if len(outs) != 2 {
					// Truncated runs may have partial outputs; subset-closed.
					return (spec.ApproxAgreement{Eps: eps}).Validate([]spec.Value{0.0, 1.0}, outs)
				}
				return (spec.ApproxAgreement{Eps: eps}).Validate([]spec.Value{0.0, 1.0}, outs)
			},
		}
	}
	rep, err := trace.Explore(2, factory, trace.ExploreOpts{MaxDepth: 30, MaxRuns: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		v := rep.Violations[0]
		t.Fatalf("violation on schedule %v: %v", v.Schedule, v.Err)
	}
	if !rep.Exhausted {
		t.Logf("not exhausted within caps (%d runs)", rep.Runs)
	}
}

func TestAA2StepComplexityVsLowerBound(t *testing.T) {
	// The protocol takes 2R+1 = 2⌈log₂(1/eps)⌉+1 operations per process;
	// the Hoest–Shavit lower bound is L = ½·log₃(1/eps). Check both that our
	// run matches 2R+1 and that it respects the lower bound.
	for _, eps := range []float64{0.5, 0.1, 0.01, 1e-4, 1e-6} {
		procs, m, err := NewApproxAgreement2([2]float64{0, 1}, eps)
		if err != nil {
			t.Fatal(err)
		}
		res, _, rerr := proto.Run(procs, m, nil, sched.RoundRobin{N: 2}, sched.WithMaxSteps(1_000_000))
		if rerr != nil {
			t.Fatal(rerr)
		}
		want := 2*bounds.AA2Rounds(eps) + 1
		for pid, ops := range res.OpsBy {
			if ops != want {
				t.Fatalf("eps=%g: process %d took %d ops, want %d", eps, pid, ops, want)
			}
			if float64(ops) < bounds.ApproxAgreementStepLB(eps) {
				t.Fatalf("eps=%g: %d ops below the step lower bound %g — impossible",
					eps, ops, bounds.ApproxAgreementStepLB(eps))
			}
		}
	}
}

func TestAA2SoloOutputsOwnInput(t *testing.T) {
	procs, m, err := NewApproxAgreement2([2]float64{0.25, 1}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, _, rerr := proto.Run(procs, m, nil, sched.Solo{PID: 0, Fallback: sched.RoundRobin{N: 2}}, sched.WithMaxSteps(10_000))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !res.Done[0] {
		t.Fatal("solo process not done")
	}
	if res.Outputs[0] != 0.25 {
		t.Fatalf("solo output %v, want own input 0.25", res.Outputs[0])
	}
}

func TestAA2ConvergenceProperty(t *testing.T) {
	// Property: for random inputs in [0,1] and random schedules, outputs are
	// within eps and within [min, max] of the inputs.
	prop := func(a, b uint16, seedRaw uint32, epsPick uint8) bool {
		in0 := float64(a) / 65535
		in1 := float64(b) / 65535
		eps := []float64{0.5, 0.25, 0.1, 0.05}[int(epsPick)%4]
		procs, m, err := NewApproxAgreement2([2]float64{in0, in1}, eps)
		if err != nil {
			return false
		}
		res, _, rerr := proto.Run(procs, m, nil, sched.NewRandom(int64(seedRaw)), sched.WithMaxSteps(100_000))
		if rerr != nil {
			return false
		}
		task := spec.ApproxAgreement{Eps: eps}
		return task.Validate([]spec.Value{in0, in1}, res.DoneOutputs()) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFirstValueAsStarvedAA(t *testing.T) {
	// The m = 1 protocol used as eps-approximate agreement: valid solo, but
	// some schedule splits the outputs by the full input spread (the
	// protocol is below the ⌊n/2⌋+1 bound of Corollary 34 and must fail).
	inputs := []proto.Value{0.0, 1.0}
	factory := func(runner sched.Stepper) trace.System {
		procs := []proto.Process{NewFirstValue(0, 0.0), NewFirstValue(0, 1.0)}
		res := proto.NewRunResult(2)
		snap := shmem.NewMWSnapshot("M", runner, 1, nil)
		return trace.System{
			Body: proto.Body(procs, snap, res),
			Check: func(*sched.Result) error {
				return (spec.ApproxAgreement{Eps: 0.5}).Validate(inputs, res.DoneOutputs())
			},
		}
	}
	rep, err := trace.Explore(2, factory, trace.ExploreOpts{MaxDepth: 12, MaxRuns: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("expected an eps-agreement violation for the 1-register protocol")
	}
}

func TestAA2RoundsAccessor(t *testing.T) {
	p, err := NewAA2(0, 0, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3", p.Rounds())
	}
}

func ExampleNewApproxAgreement2() {
	procs, m, _ := NewApproxAgreement2([2]float64{0, 1}, 0.25)
	res, _, _ := proto.Run(procs, m, nil, sched.RoundRobin{N: 2})
	fmt.Println(len(res.DoneOutputs()))
	// Output: 2
}
